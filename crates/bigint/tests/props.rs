//! Property tests: every `UBig` operation is cross-checked against `u128`
//! reference arithmetic, plus structural properties (canonicity, algebraic
//! identities) on values far beyond 128 bits.

use gridbnb_bigint::UBig;
use proptest::prelude::*;
use std::str::FromStr;

/// A `UBig` built from up to five random limbs (up to 320 bits).
fn arb_ubig() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u64>(), 0..5).prop_map(UBig::from_limbs)
}

/// A pair `(UBig, u128)` with identical values, for reference checks.
fn arb_u128_pair() -> impl Strategy<Value = (UBig, u128)> {
    any::<u128>().prop_map(|v| (UBig::from(v), v))
}

proptest! {
    #[test]
    fn from_to_u128_round_trip(v in any::<u128>()) {
        prop_assert_eq!(UBig::from(v).to_u128(), Some(v));
    }

    #[test]
    fn add_matches_u128((a, ar) in arb_u128_pair(), (b, br) in arb_u128_pair()) {
        prop_assume!(ar.checked_add(br).is_some());
        prop_assert_eq!((&a + &b).to_u128(), Some(ar + br));
    }

    #[test]
    fn sub_matches_u128((a, ar) in arb_u128_pair(), (b, br) in arb_u128_pair()) {
        let (hi, hir, lo, lor) = if ar >= br { (a, ar, b, br) } else { (b, br, a, ar) };
        prop_assert_eq!(hi.checked_sub(&lo).unwrap().to_u128(), Some(hir - lor));
        if hir != lor {
            prop_assert_eq!(lo.checked_sub(&hi), None);
        }
    }

    #[test]
    fn mul_matches_u128(ar in any::<u64>(), br in any::<u64>()) {
        let a = UBig::from(ar);
        let b = UBig::from(br);
        prop_assert_eq!((&a * &b).to_u128(), Some(u128::from(ar) * u128::from(br)));
    }

    #[test]
    fn div_rem_u64_matches_u128((a, ar) in arb_u128_pair(), d in 1u64..) {
        let (q, r) = a.div_rem_u64(d);
        prop_assert_eq!(q.to_u128(), Some(ar / u128::from(d)));
        prop_assert_eq!(u128::from(r), ar % u128::from(d));
    }

    #[test]
    fn add_commutes(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_round_trips(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!((&a + &b).checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn mul_commutes(a in arb_ubig(), b in arb_ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in arb_ubig(), b in arb_ubig(), c in arb_ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn full_div_rem_reconstructs(a in arb_ubig(), b in arb_ubig()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_u64_consistent_with_full(a in arb_ubig(), d in 1u64..) {
        let (q1, r1) = a.div_rem_u64(d);
        let (q2, r2) = a.div_rem(&UBig::from(d));
        prop_assert_eq!(q1, q2);
        prop_assert_eq!(UBig::from(r1), r2);
    }

    #[test]
    fn div_rem_fast_paths_match_binary_reference(a in arb_ubig(), b in arb_ubig()) {
        prop_assume!(!b.is_zero());
        // `div_rem` picks the u128 fast path whenever operands fit; the
        // binary long division is the reference it must agree with.
        let (q, r) = a.div_rem(&b);
        let (qr, rr) = a.div_rem_binary(&b);
        prop_assert_eq!(q, qr);
        prop_assert_eq!(r, rr);
    }

    #[test]
    fn div_rem_u64_u128_fast_path_matches_binary(a in any::<u128>(), d in 1u64..) {
        // Dividend fits u128 → `div_rem_u64` takes the native-division
        // fast path (the fold/unfold hot case). Pin it to the reference.
        let a = UBig::from(a);
        let (q, r) = a.div_rem_u64(d);
        let (qr, rr) = a.div_rem_binary(&UBig::from(d));
        prop_assert_eq!(q, qr);
        prop_assert_eq!(UBig::from(r), rr);
    }

    #[test]
    fn add_u128_matches_ubig_add(a in arb_ubig(), v in any::<u128>()) {
        prop_assert_eq!(a.add_u128(v), &a + &UBig::from(v));
        let mut b = a.clone();
        b.add_assign_u128(v);
        prop_assert_eq!(b, a.add_u128(v));
    }

    #[test]
    fn mul_div_floor_bounds(a in arb_ubig(), num in 0u64.., den in 1u64..) {
        let got = a.mul_div_floor(num, den);
        // got <= a*num/den < got+1, i.e. got*den <= a*num < (got+1)*den
        let lhs = got.mul_u64(den);
        let target = a.mul_u64(num);
        prop_assert!(lhs <= target);
        prop_assert!(target < &lhs + &UBig::from(den));
    }

    #[test]
    fn display_parse_round_trip(a in arb_ubig()) {
        let s = a.to_string();
        prop_assert_eq!(UBig::from_str(&s).unwrap(), a);
    }

    #[test]
    fn ordering_agrees_with_u128((a, ar) in arb_u128_pair(), (b, br) in arb_u128_pair()) {
        prop_assert_eq!(a.cmp(&b), ar.cmp(&br));
    }

    #[test]
    fn bit_len_matches_u128((a, ar) in arb_u128_pair()) {
        prop_assert_eq!(a.bit_len() as u32, 128 - ar.leading_zeros());
    }

    #[test]
    fn canonical_no_trailing_zero_limbs(a in arb_ubig(), b in arb_ubig()) {
        for v in [&a + &b, a.saturating_sub(&b), &a * &b] {
            prop_assert!(v.limbs().last() != Some(&0));
        }
    }

    #[test]
    fn ratio_of_halved_is_half(a in arb_ubig()) {
        prop_assume!(!a.is_zero());
        let (half, _) = a.div_rem_u64(2);
        let r = half.ratio(&a);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&r), "ratio {}", r);
    }

    #[test]
    fn to_f64_relative_error_small(a in arb_ubig()) {
        prop_assume!(!a.is_zero());
        // compare against string-length magnitude: f64 has ~15.9 digits
        let f = a.to_f64();
        prop_assert!(f.is_finite());
        let digits = a.to_string().len() as f64;
        prop_assert!((f.log10() - digits).abs() < 2.0, "f={} digits={}", f, digits);
    }
}
