//! Division: by a limb, full long division, and the fused multiply-divide
//! used by the proportional partitioning operator.

use crate::UBig;

impl UBig {
    /// `(self / d, self % d)` for a non-zero limb divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "UBig division by zero");
        // Values that fit a `u128` divide natively in one instruction pair
        // instead of the per-limb loop (and skip the quotient allocation
        // when the quotient fits one limb). This is the fold/unfold hot
        // path: permutation-tree weights are factorials, which stay below
        // 2^128 for every n ≤ 34.
        if let Some(v) = self.to_u128() {
            let d = u128::from(d);
            return (UBig::from(v / d), (v % d) as u64);
        }
        let mut quot = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (u128::from(rem) << 64) | u128::from(limb);
            quot[i] = (cur / u128::from(d)) as u64;
            rem = (cur % u128::from(d)) as u64;
        }
        (UBig::from_limbs(quot), rem)
    }

    /// Full `(self / divisor, self % divisor)` by binary long division.
    ///
    /// Interval arithmetic only ever divides by a limb; the full division
    /// exists for ratio diagnostics and tests. Bit-at-a-time is O(bits ·
    /// limbs) which is negligible at the ≤ 256-bit sizes this crate sees.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "UBig division by zero");
        if self < divisor {
            return (UBig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, UBig::from(r));
        }
        // Both operands fit a `u128`: one native division. (The dividend
        // is the larger one thanks to the `self < divisor` early return.)
        if let (Some(a), Some(b)) = (self.to_u128(), divisor.to_u128()) {
            return (UBig::from(a / b), UBig::from(a % b));
        }
        self.div_rem_binary(divisor)
    }

    /// Reference binary long division, unconditionally bit-at-a-time.
    ///
    /// This is the algorithm [`UBig::div_rem`] falls back to once its fast
    /// paths don't apply; it is public so property tests can pin the
    /// `u128` fast paths against it on inputs where both are defined.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_binary(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "UBig division by zero");
        let bits = self.bit_len();
        let mut quot = UBig::zero();
        let mut rem = UBig::zero();
        for i in (0..bits).rev() {
            rem.shl1_assign();
            if self.bit(i) {
                rem.add_assign_u64(1);
            }
            quot.shl1_assign();
            if rem >= *divisor {
                rem.sub_assign(divisor);
                quot.add_assign_u64(1);
            }
        }
        (quot, rem)
    }

    /// `⌊self · num / den⌋` without intermediate overflow.
    ///
    /// This is the core of the coordinator's partitioning operator: the
    /// partition point of `[A, B)` between a holder of power `p` and a
    /// requester of power `q` is `C = B − ⌊(B−A)·q/(p+q)⌋`, computed here
    /// as `(B−A).mul_div_floor(q, p+q)`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn mul_div_floor(&self, num: u64, den: u64) -> UBig {
        assert!(den != 0, "UBig mul_div_floor division by zero");
        let (q, _r) = self.mul_u64(num).div_rem_u64(den);
        q
    }

    /// Approximate ratio `self / denom` as an `f64` in `[0, ∞)`.
    ///
    /// Used only for progress reporting and simulator statistics, never
    /// for the interval algebra itself.
    pub fn ratio(&self, denom: &UBig) -> f64 {
        if denom.is_zero() {
            return f64::INFINITY;
        }
        // Scale both operands down so they fit f64 comfortably.
        let shift = denom.bit_len().saturating_sub(52);
        self.to_f64_shifted(shift) / denom.to_f64_shifted(shift)
    }

    /// `self >> shift` converted to `f64` (rounding toward zero).
    fn to_f64_shifted(&self, shift: usize) -> f64 {
        let (limb, off) = (shift / 64, shift % 64);
        let mut value = 0.0f64;
        let mut scale = 1.0f64;
        for i in limb..self.limbs.len() {
            let mut w = self.limbs[i] >> off;
            if off > 0 && i + 1 < self.limbs.len() {
                w |= self.limbs[i + 1] << (64 - off);
            }
            value += w as f64 * scale;
            scale *= 2.0f64.powi(64);
        }
        value
    }

    /// Approximate conversion to `f64` (may lose precision, may be
    /// `inf` for gigantic values).
    pub fn to_f64(&self) -> f64 {
        self.to_f64_shifted(0)
    }
}
