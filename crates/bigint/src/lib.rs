//! Arbitrary-precision unsigned integer arithmetic for interval-coded
//! branch and bound.
//!
//! The interval coding of Mezmaz, Melab and Talbi (2007) identifies every
//! node of a regular search tree with an integer below the weight of the
//! root. For the permutation tree of Taillard's Ta056 instance (50 jobs)
//! that weight is `50! ≈ 3.04·10⁶⁴`, which exceeds `u128`. This crate
//! provides [`UBig`], a compact little-endian limb vector with exactly the
//! operations the coding needs:
//!
//! * addition, subtraction (checked and saturating), comparison;
//! * multiplication by a limb and full school-book multiplication;
//! * division by a limb, full long division, and the fused
//!   [`UBig::mul_div_floor`] used by the proportional interval
//!   partitioning operator;
//! * factorials, powers of two, decimal parsing and formatting (the
//!   checkpoint files store intervals as decimal strings).
//!
//! The representation is canonical: no trailing zero limbs, and zero is
//! the empty limb vector. Every operation preserves canonicity, and the
//! property-test suite cross-checks all arithmetic against `u128`
//! reference computations.
//!
//! # Example
//!
//! ```
//! use gridbnb_bigint::UBig;
//!
//! let fifty = UBig::factorial(50);
//! assert_eq!(
//!     fifty.to_string(),
//!     "30414093201713378043612608166064768844377641568960512000000000000"
//! );
//! let (half, _rem) = fifty.div_rem_u64(2);
//! assert!(half < fifty);
//! assert_eq!(&half + &half, fifty);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod convert;
mod divide;
mod fmt;
mod ops;
mod ubig;

pub use fmt::ParseUBigError;
pub use ubig::UBig;

#[cfg(test)]
mod tests;
