//! Conversions between `UBig` and primitive integers.

use crate::UBig;

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(u64::from(v))
    }
}

impl From<usize> for UBig {
    fn from(v: usize) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl UBig {
    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }
}
