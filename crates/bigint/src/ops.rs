//! Operator trait implementations (comparison and `+ - *` on references).

use crate::UBig;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

impl PartialOrd for UBig {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialEq<u64> for UBig {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

impl PartialOrd<u64> for UBig {
    fn partial_cmp(&self, other: &u64) -> Option<Ordering> {
        if self.limbs.len() > 1 {
            Some(Ordering::Greater)
        } else {
            Some(self.to_u64().unwrap_or(0).cmp(other))
        }
    }
}

impl Add<&UBig> for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        UBig::add(self, rhs)
    }
}

impl Add<u64> for &UBig {
    type Output = UBig;
    fn add(self, rhs: u64) -> UBig {
        let mut out = self.clone();
        out.add_assign_u64(rhs);
        out
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        UBig::add_assign(self, rhs);
    }
}

impl AddAssign<u64> for UBig {
    fn add_assign(&mut self, rhs: u64) {
        self.add_assign_u64(rhs);
    }
}

impl Sub<&UBig> for &UBig {
    type Output = UBig;
    /// # Panics
    ///
    /// Panics on underflow; use [`UBig::checked_sub`] when the ordering is
    /// not statically known.
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs).expect("UBig subtraction underflow")
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        UBig::sub_assign(self, rhs);
    }
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        UBig::mul(self, rhs)
    }
}

impl Mul<u64> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: u64) -> UBig {
        self.mul_u64(rhs)
    }
}
