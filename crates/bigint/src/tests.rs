//! Unit tests for the bigint crate. Property tests against `u128`
//! reference arithmetic live in `tests/props.rs`.

use crate::UBig;
use std::str::FromStr;

#[test]
fn zero_is_canonical() {
    assert!(UBig::zero().is_zero());
    assert_eq!(UBig::zero().limbs().len(), 0);
    assert_eq!(UBig::from(0u64), UBig::zero());
    assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
    assert_eq!(UBig::default(), UBig::zero());
}

#[test]
fn one_is_one() {
    assert!(UBig::one().is_one());
    assert!(!UBig::zero().is_one());
    assert!(!UBig::from(2u64).is_one());
    assert_eq!(UBig::one().to_u64(), Some(1));
}

#[test]
fn from_limbs_normalizes() {
    let v = UBig::from_limbs(vec![5, 0, 0]);
    assert_eq!(v.limbs(), &[5]);
    let w = UBig::from_limbs(vec![5, 7, 0]);
    assert_eq!(w.limbs(), &[5, 7]);
}

#[test]
fn add_with_carry_across_limbs() {
    let a = UBig::from(u64::MAX);
    let b = &a + 1u64;
    assert_eq!(b.limbs(), &[0, 1]);
    assert_eq!(b.to_u128(), Some(u128::from(u64::MAX) + 1));
}

#[test]
fn add_assign_carry_chain() {
    let mut a = UBig::from(u128::MAX);
    a += 1u64;
    assert_eq!(a.limbs(), &[0, 0, 1]);
}

#[test]
fn add_shorter_into_longer_and_vice_versa() {
    let big = UBig::from(u128::MAX - 7);
    let small = UBig::from(9u64);
    let sum1 = &big + &small;
    let sum2 = &small + &big;
    assert_eq!(sum1, sum2);
    assert_eq!(sum1.limbs(), &[1, 0, 1]);
}

#[test]
fn sub_borrows() {
    let a = UBig::from_limbs(vec![0, 1]); // 2^64
    let one = UBig::one();
    let d = &a - &one;
    assert_eq!(d.to_u64(), Some(u64::MAX));
}

#[test]
fn sub_to_zero_normalizes() {
    let a = UBig::from(123456u64);
    assert!(a.checked_sub(&a).unwrap().is_zero());
}

#[test]
fn checked_sub_underflow_is_none() {
    let a = UBig::from(5u64);
    let b = UBig::from(6u64);
    assert_eq!(a.checked_sub(&b), None);
    assert_eq!(b.checked_sub(&a), Some(UBig::one()));
}

#[test]
fn saturating_sub_clamps() {
    let a = UBig::from(5u64);
    let b = UBig::from(6u64);
    assert!(a.saturating_sub(&b).is_zero());
    assert_eq!(b.saturating_sub(&a), UBig::one());
}

#[test]
#[should_panic(expected = "underflow")]
fn sub_assign_underflow_panics() {
    let mut a = UBig::from(1u64);
    a.sub_assign(&UBig::from(2u64));
}

#[test]
fn sub_assign_u64_works() {
    let mut a = UBig::from_limbs(vec![0, 1]);
    a.sub_assign_u64(1);
    assert_eq!(a.to_u64(), Some(u64::MAX));
}

#[test]
fn mul_u64_by_zero() {
    let a = UBig::factorial(20);
    assert!(a.mul_u64(0).is_zero());
}

#[test]
fn mul_cross_limb() {
    let a = UBig::from(u64::MAX);
    let b = a.mul_u64(u64::MAX);
    assert_eq!(
        b.to_u128(),
        Some(u128::from(u64::MAX) * u128::from(u64::MAX))
    );
}

#[test]
fn full_mul_matches_u128() {
    let a = UBig::from(0xdead_beef_u64);
    let b = UBig::from(0x1234_5678_9abc_u64);
    assert_eq!(
        (&a * &b).to_u128(),
        Some(0xdead_beef_u128 * 0x1234_5678_9abc_u128)
    );
}

#[test]
fn mul_zero_either_side() {
    let a = UBig::factorial(30);
    assert!((&a * &UBig::zero()).is_zero());
    assert!((&UBig::zero() * &a).is_zero());
}

#[test]
fn factorial_small_values() {
    assert_eq!(UBig::factorial(0).to_u64(), Some(1));
    assert_eq!(UBig::factorial(1).to_u64(), Some(1));
    assert_eq!(UBig::factorial(5).to_u64(), Some(120));
    assert_eq!(
        UBig::factorial(20).to_u64(),
        Some(2_432_902_008_176_640_000)
    );
}

#[test]
fn factorial_50_matches_reference() {
    // Reference value computed independently (and matching the weight of
    // the Ta056 permutation-tree root).
    assert_eq!(
        UBig::factorial(50).to_string(),
        "30414093201713378043612608166064768844377641568960512000000000000"
    );
}

#[test]
fn pow2_bit_position() {
    assert_eq!(UBig::pow2(0).to_u64(), Some(1));
    assert_eq!(UBig::pow2(63).to_u64(), Some(1 << 63));
    assert_eq!(UBig::pow2(64).limbs(), &[0, 1]);
    assert_eq!(UBig::pow2(130).bit_len(), 131);
}

#[test]
fn pow_binary_exponentiation() {
    assert_eq!(UBig::pow(3, 0).to_u64(), Some(1));
    assert_eq!(UBig::pow(3, 5).to_u64(), Some(243));
    assert_eq!(UBig::pow(2, 100), UBig::pow2(100));
    assert_eq!(
        UBig::pow(10, 30).to_string(),
        format!("1{}", "0".repeat(30))
    );
}

#[test]
fn bit_len_and_byte_len() {
    assert_eq!(UBig::zero().bit_len(), 0);
    assert_eq!(UBig::zero().byte_len(), 0);
    assert_eq!(UBig::one().bit_len(), 1);
    assert_eq!(UBig::one().byte_len(), 1);
    assert_eq!(UBig::from(255u64).byte_len(), 1);
    assert_eq!(UBig::from(256u64).byte_len(), 2);
    assert_eq!(UBig::factorial(50).bit_len(), 215);
    assert_eq!(UBig::factorial(50).byte_len(), 27);
}

#[test]
fn bit_access() {
    let v = UBig::from(0b1010u64);
    assert!(!v.bit(0));
    assert!(v.bit(1));
    assert!(!v.bit(2));
    assert!(v.bit(3));
    assert!(!v.bit(200)); // out of range reads as zero
}

#[test]
fn div_rem_u64_exact_and_remainder() {
    let a = UBig::factorial(30);
    let (q, r) = a.div_rem_u64(30);
    assert_eq!(r, 0);
    assert_eq!(q, UBig::factorial(29));
    let (_q2, r2) = UBig::from(17u64).div_rem_u64(5);
    assert_eq!(r2, 2);
}

#[test]
#[should_panic(expected = "division by zero")]
fn div_rem_u64_by_zero_panics() {
    let _ = UBig::from(1u64).div_rem_u64(0);
}

#[test]
fn div_rem_full_reconstructs() {
    let a = UBig::factorial(41);
    let b = UBig::factorial(17);
    let (q, r) = a.div_rem(&b);
    assert!(r < b);
    assert_eq!(&(&q * &b) + &r, a);
}

#[test]
fn div_rem_smaller_dividend() {
    let a = UBig::from(5u64);
    let b = UBig::factorial(25);
    let (q, r) = a.div_rem(&b);
    assert!(q.is_zero());
    assert_eq!(r, a);
}

#[test]
fn div_rem_single_limb_divisor_fast_path() {
    let a = UBig::factorial(33);
    let (q, r) = a.div_rem(&UBig::from(97u64));
    let (q2, r2) = a.div_rem_u64(97);
    assert_eq!(q, q2);
    assert_eq!(r.to_u64(), Some(r2));
}

#[test]
fn mul_div_floor_is_floor() {
    // 10 * 1 / 3 = 3.33 -> 3
    assert_eq!(UBig::from(10u64).mul_div_floor(1, 3).to_u64(), Some(3));
    // does not overflow intermediate: (2^64-1) * (2^64-1) / 1
    let a = UBig::from(u64::MAX);
    assert_eq!(
        a.mul_div_floor(u64::MAX, 1).to_u128(),
        Some(u128::from(u64::MAX) * u128::from(u64::MAX))
    );
}

#[test]
fn ratio_is_close() {
    let half = UBig::factorial(50).div_rem_u64(2).0;
    let r = half.ratio(&UBig::factorial(50));
    assert!((r - 0.5).abs() < 1e-12, "ratio {r}");
    assert_eq!(UBig::zero().ratio(&UBig::one()), 0.0);
    assert!(UBig::one().ratio(&UBig::zero()).is_infinite());
}

#[test]
fn to_f64_on_small_values_is_exact() {
    assert_eq!(UBig::from(12345u64).to_f64(), 12345.0);
    assert_eq!(UBig::zero().to_f64(), 0.0);
    let big = UBig::pow2(100);
    assert_eq!(big.to_f64(), 2f64.powi(100));
}

#[test]
fn display_round_trip() {
    for s in [
        "0",
        "1",
        "18446744073709551615",
        "18446744073709551616",
        "340282366920938463463374607431768211456",
        "30414093201713378043612608166064768844377641568960512000000000000",
    ] {
        let v = UBig::from_str(s).unwrap();
        assert_eq!(v.to_string(), s);
    }
}

#[test]
fn parse_accepts_leading_zeros() {
    assert_eq!(UBig::from_str("000123").unwrap().to_u64(), Some(123));
}

#[test]
fn parse_rejects_garbage() {
    assert!(UBig::from_str("").is_err());
    assert!(UBig::from_str("12x3").is_err());
    assert!(UBig::from_str("-5").is_err());
    assert!(UBig::from_str(" 5").is_err());
}

#[test]
fn ordering_mixed_sizes() {
    let small = UBig::from(u64::MAX);
    let big = UBig::from_limbs(vec![0, 1]);
    assert!(small < big);
    assert!(big > small);
    assert_eq!(big.cmp(&big.clone()), std::cmp::Ordering::Equal);
}

#[test]
fn ordering_same_size_compares_high_limb_first() {
    let a = UBig::from_limbs(vec![9, 1]);
    let b = UBig::from_limbs(vec![0, 2]);
    assert!(a < b);
}

#[test]
fn compare_with_u64_scalar() {
    let a = UBig::from(7u64);
    assert!(a == 7u64);
    assert!(a > 6u64);
    assert!(a < 8u64);
    assert!(UBig::factorial(30) > u64::MAX);
}

#[test]
fn hash_consistent_with_eq() {
    use std::collections::HashSet;
    let mut set = HashSet::new();
    set.insert(UBig::factorial(10));
    assert!(set.contains(&UBig::factorial(10)));
    assert!(!set.contains(&UBig::factorial(11)));
}

#[test]
fn debug_format_contains_value() {
    assert_eq!(format!("{:?}", UBig::from(42u64)), "UBig(42)");
}

#[test]
fn display_padding_works() {
    assert_eq!(format!("{:>6}", UBig::from(42u64)), "    42");
}
