//! Addition, subtraction and multiplication.

use crate::UBig;

impl UBig {
    /// `self += other`.
    pub fn add_assign(&mut self, other: &UBig) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
            if carry == 0 && i >= other.limbs.len() {
                return; // no carry left and nothing more to add
            }
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self + other` without consuming either operand.
    pub fn add(&self, other: &UBig) -> UBig {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// `self += small` for a double-limb addend.
    ///
    /// The pooled explorer tracks sibling offsets as `u128` deltas against
    /// a per-frame `UBig` base; this is how a delta is folded back in
    /// without materializing it as a temporary `UBig`.
    pub fn add_assign_u128(&mut self, small: u128) {
        let (lo, hi) = (small as u64, (small >> 64) as u64);
        if hi == 0 {
            self.add_assign_u64(lo);
            return;
        }
        if self.limbs.len() < 2 {
            self.limbs.resize(2, 0);
        }
        let (s0, c0) = self.limbs[0].overflowing_add(lo);
        self.limbs[0] = s0;
        let (s1, c1) = self.limbs[1].overflowing_add(hi);
        let (s1, c2) = s1.overflowing_add(u64::from(c0));
        self.limbs[1] = s1;
        let mut carry = u64::from(c1) + u64::from(c2);
        for limb in self.limbs.iter_mut().skip(2) {
            if carry == 0 {
                break;
            }
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = u64::from(c);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
        self.normalize();
    }

    /// `self + small` for a double-limb addend, without consuming `self`.
    pub fn add_u128(&self, small: u128) -> UBig {
        let mut out = self.clone();
        out.add_assign_u128(small);
        out
    }

    /// `self += small`.
    pub fn add_assign_u64(&mut self, small: u64) {
        let mut carry = small;
        for limb in &mut self.limbs {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            if !c {
                return;
            }
            carry = 1;
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if self < other {
            return None;
        }
        let mut out = self.clone();
        out.sub_assign(other);
        Some(out)
    }

    /// `max(self - other, 0)`.
    pub fn saturating_sub(&self, other: &UBig) -> UBig {
        self.checked_sub(other).unwrap_or_default()
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &UBig) {
        assert!(
            other.limbs.len() <= self.limbs.len(),
            "UBig subtraction underflow"
        );
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        assert_eq!(borrow, 0, "UBig subtraction underflow");
        self.normalize();
    }

    /// `self -= small`.
    ///
    /// # Panics
    ///
    /// Panics if `small > self`.
    pub fn sub_assign_u64(&mut self, small: u64) {
        let mut borrow = small;
        for limb in &mut self.limbs {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            if !b {
                borrow = 0;
                break;
            }
            borrow = 1;
        }
        assert_eq!(borrow, 0, "UBig subtraction underflow");
        self.normalize();
    }

    /// `self *= small`.
    pub fn mul_assign_u64(&mut self, small: u64) {
        if small == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let prod = u128::from(*limb) * u128::from(small) + u128::from(carry);
            *limb = prod as u64;
            carry = (prod >> 64) as u64;
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self * small` without consuming the operand.
    pub fn mul_u64(&self, small: u64) -> UBig {
        let mut out = self.clone();
        out.mul_assign_u64(small);
        out
    }

    /// Full school-book multiplication `self * other`.
    ///
    /// Operand sizes in this workload stay below a dozen limbs, so the
    /// quadratic algorithm is the right choice (no Karatsuba threshold is
    /// ever reached).
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cell = &mut limbs[i + j];
                let prod = u128::from(a) * u128::from(b) + u128::from(*cell) + u128::from(carry);
                *cell = prod as u64;
                carry = (prod >> 64) as u64;
            }
            limbs[i + other.limbs.len()] = carry;
        }
        UBig::from_limbs(limbs)
    }

    /// `self << 1` in place (used by the binary long division).
    pub(crate) fn shl1_assign(&mut self) {
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let next_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = next_carry;
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }
}
