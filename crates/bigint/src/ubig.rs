//! The [`UBig`] type: representation, construction and basic queries.

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zeros; zero is
/// the empty limb vector. All arithmetic lives in the sibling modules and
/// is re-exported through inherent methods and operator impls.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct UBig {
    pub(crate) limbs: Vec<u64>,
}

impl UBig {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds a `UBig` from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = UBig { limbs };
        v.normalize();
        v
    }

    /// The little-endian limbs (no trailing zeros; empty for zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => 64 * (self.limbs.len() - 1) + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Number of bytes needed to store the value (`0` for zero).
    ///
    /// Used by the communication-cost benchmarks to compare interval
    /// messages against serialized node lists.
    pub fn byte_len(&self) -> usize {
        self.bit_len().div_ceil(8)
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&w| (w >> off) & 1 == 1)
    }

    /// `n!` as a `UBig`.
    ///
    /// This is the weight of the root of a permutation tree over `n`
    /// elements (equation 3 of the paper, evaluated at depth 0).
    pub fn factorial(n: u32) -> Self {
        let mut acc = UBig::one();
        for k in 2..=u64::from(n) {
            acc.mul_assign_u64(k);
        }
        acc
    }

    /// `2^n` as a `UBig`: the weight of the root of a binary tree of
    /// height `n` (equation 2 of the paper).
    pub fn pow2(n: usize) -> Self {
        let mut limbs = vec![0u64; n / 64 + 1];
        limbs[n / 64] = 1u64 << (n % 64);
        UBig::from_limbs(limbs)
    }

    /// `base^exp` by binary exponentiation.
    pub fn pow(base: u64, exp: u32) -> Self {
        let mut result = UBig::one();
        let mut square = UBig::from(base);
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &square;
            }
            e >>= 1;
            if e > 0 {
                square = &square * &square;
            }
        }
        result
    }

    /// Restores the canonical form (no trailing zero limbs).
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}
