//! Decimal formatting and parsing.
//!
//! Checkpoint files store interval endpoints as decimal strings, so the
//! round-trip `UBig -> String -> UBig` must be exact; both directions work
//! in chunks of 19 decimal digits (the largest power of ten below 2⁶⁴).

use crate::UBig;
use std::fmt;
use std::str::FromStr;

/// Largest power of ten that fits in a limb: `10^19`.
const CHUNK: u64 = 10_000_000_000_000_000_000;
const CHUNK_DIGITS: usize = 19;

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = String::with_capacity(chunks.len() * CHUNK_DIGITS);
        let mut iter = chunks.iter().rev();
        if let Some(first) = iter.next() {
            out.push_str(&first.to_string());
        }
        for chunk in iter {
            out.push_str(&format!("{chunk:019}"));
        }
        f.pad_integral(true, "", &out)
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

/// Error parsing a decimal string into a [`UBig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty string is not a valid UBig"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid decimal digit {c:?} in UBig"),
        }
    }
}

impl std::error::Error for ParseUBigError {}

impl FromStr for UBig {
    type Err = ParseUBigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseUBigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = UBig::zero();
        let bytes = s.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() {
            let take = (bytes.len() - pos).min(CHUNK_DIGITS);
            let mut chunk = 0u64;
            for &b in &bytes[pos..pos + take] {
                if !b.is_ascii_digit() {
                    return Err(ParseUBigError {
                        kind: ParseErrorKind::InvalidDigit(b as char),
                    });
                }
                chunk = chunk * 10 + u64::from(b - b'0');
            }
            acc.mul_assign_u64(10u64.pow(take as u32));
            acc.add_assign_u64(chunk);
            pos += take;
        }
        Ok(acc)
    }
}
