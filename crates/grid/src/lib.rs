//! Discrete-event simulator of the paper's experimental grid.
//!
//! The paper's evaluation ran on 1889 processors across 9 administrative
//! domains for 25 days — a platform we substitute with a discrete-event
//! simulation (see DESIGN.md §2). Crucially, the simulator drives the
//! **same** [`gridbnb_core::Coordinator`] state machine as the real
//! multi-threaded runtime; only the workers and the network are
//! simulated. The protocol properties the paper reports (worker/farmer
//! exploitation, work allocations, checkpoint counts, redundancy) are
//! therefore measured on the real protocol implementation.
//!
//! * [`pool`] — the paper's Table 1 pool encoded as data;
//! * [`net`] — the Figure 6 topology as a latency model;
//! * [`volatility`] — cycle-stealing availability with the diurnal
//!   pattern of Figure 7;
//! * [`workload`] — irregular synthetic exploration effort over the root
//!   interval;
//! * [`sim`] — the event loop producing a Table-2-shaped [`sim::SimReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod pool;
pub mod sim;
pub mod volatility;
pub mod workload;

pub use net::LatencyModel;
pub use pool::{paper_pool, Cluster, ClusterKind, CpuGroup, GridPool};
pub use sim::{simulate, Sample, SimConfig, SimReport};
pub use volatility::{ChurnProfile, VolatilityModel};
pub use workload::WorkloadModel;
