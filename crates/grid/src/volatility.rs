//! Host availability model: cycle stealing over volatile desktops plus
//! reserved-node sessions, with the diurnal pattern visible in the
//! paper's Figure 7.
//!
//! Each processor alternates *up* and *down* periods drawn from
//! exponential distributions whose means depend on the cluster kind
//! (campus desktops churn much faster than Grid'5000 reservations).
//! Campus down-times are modulated by a 24-hour sinusoid — machines are
//! busy with students during the day and free at night — which produces
//! the wavy available-processor curve of Figure 7.

use crate::pool::ClusterKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Availability parameters for one cluster kind.
#[derive(Clone, Copy, Debug)]
pub struct ChurnProfile {
    /// Mean length of an availability period, seconds.
    pub mean_up_s: f64,
    /// Mean length of an unavailability period, seconds.
    pub mean_down_s: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: 0 = flat, 0.8 = strong
    /// day/night swing of the *down* durations.
    pub diurnal_amplitude: f64,
}

/// The volatility model: per-kind churn profiles and a start-up ramp.
#[derive(Clone, Debug)]
pub struct VolatilityModel {
    /// Campus (cycle stealing) profile.
    pub campus: ChurnProfile,
    /// Dedicated (reservation) profile.
    pub dedicated: ChurnProfile,
    /// Hosts join progressively over this window at the start of the
    /// run (the paper's run ramped from a few hundred processors).
    pub rampup_s: f64,
    /// Fraction of the pool that participates at all (not every listed
    /// processor was exploited all the time; Table 2 reports an average
    /// of 328 on a 1889-processor pool).
    pub participation: f64,
}

impl Default for VolatilityModel {
    fn default() -> Self {
        VolatilityModel {
            campus: ChurnProfile {
                mean_up_s: 4.0 * 3600.0,
                mean_down_s: 8.0 * 3600.0,
                diurnal_amplitude: 0.7,
            },
            dedicated: ChurnProfile {
                mean_up_s: 24.0 * 3600.0,
                mean_down_s: 36.0 * 3600.0,
                diurnal_amplitude: 0.2,
            },
            rampup_s: 2.0 * 3600.0,
            participation: 1.0,
        }
    }
}

impl VolatilityModel {
    /// The profile for a cluster kind.
    pub fn profile(&self, kind: ClusterKind) -> ChurnProfile {
        match kind {
            ClusterKind::Campus => self.campus,
            ClusterKind::Dedicated => self.dedicated,
        }
    }
}

/// Stateful per-run availability sampler.
pub struct AvailabilitySampler {
    rng: StdRng,
}

impl AvailabilitySampler {
    /// Deterministic sampler from a seed.
    pub fn new(seed: u64) -> Self {
        AvailabilitySampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Exponential draw with the given mean (seconds), as nanoseconds.
    pub fn exp_ns(&mut self, mean_s: f64) -> u64 {
        let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
        let secs = -mean_s * u.ln();
        (secs.min(365.0 * 86_400.0) * 1e9) as u64
    }

    /// First join time of a host: uniform over the ramp-up window.
    pub fn initial_join_ns(&mut self, rampup_s: f64) -> u64 {
        let secs = self.rng.random_range(0.0..rampup_s.max(1e-9));
        (secs * 1e9) as u64
    }

    /// Whether a host participates at all.
    pub fn participates(&mut self, participation: f64) -> bool {
        self.rng.random_range(0.0..1.0) < participation
    }

    /// Length of an up period for a profile, at absolute time `now_ns`.
    pub fn up_period_ns(&mut self, profile: &ChurnProfile) -> u64 {
        self.exp_ns(profile.mean_up_s).max(1)
    }

    /// Length of a down period, modulated by the diurnal factor:
    /// longer during the (simulated) day, shorter at night.
    pub fn down_period_ns(&mut self, profile: &ChurnProfile, now_ns: u64) -> u64 {
        let t_days = now_ns as f64 / 1e9 / 86_400.0;
        let phase = (t_days.fract() * std::f64::consts::TAU).sin();
        let factor = 1.0 + profile.diurnal_amplitude * phase;
        self.exp_ns(profile.mean_down_s * factor.max(0.05)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut s = AvailabilitySampler::new(42);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| s.exp_ns(100.0) as f64 / 1e9).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 10.0, "sampled mean {mean}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = AvailabilitySampler::new(7);
        let mut b = AvailabilitySampler::new(7);
        for _ in 0..100 {
            assert_eq!(a.exp_ns(50.0), b.exp_ns(50.0));
        }
    }

    #[test]
    fn diurnal_modulation_changes_down_times() {
        let profile = ChurnProfile {
            mean_up_s: 100.0,
            mean_down_s: 100.0,
            diurnal_amplitude: 0.9,
        };
        // Average the modulated mean at day peak vs night trough.
        let day_peak = (0.25f64 * 86_400.0 * 1e9) as u64; // sin = 1
        let night = (0.75f64 * 86_400.0 * 1e9) as u64; // sin = -1
        let mut s = AvailabilitySampler::new(3);
        let n = 4000;
        let day_mean: f64 = (0..n)
            .map(|_| s.down_period_ns(&profile, day_peak) as f64)
            .sum::<f64>()
            / n as f64;
        let night_mean: f64 = (0..n)
            .map(|_| s.down_period_ns(&profile, night) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            day_mean > night_mean * 3.0,
            "day {day_mean} vs night {night_mean}"
        );
    }

    #[test]
    fn ramp_join_times_within_window() {
        let mut s = AvailabilitySampler::new(9);
        for _ in 0..100 {
            let t = s.initial_join_ns(3600.0);
            assert!(t <= 3_600_000_000_000);
        }
    }
}
