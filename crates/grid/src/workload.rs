//! Synthetic B&B workload model for the simulator.
//!
//! The simulator does not re-run a real 22-CPU-year search; it models
//! the *exploration effort* as a density of node visits over the root
//! interval `[0, N!)`. The density is deliberately **irregular** (the
//! paper stresses "the irregular nature of the tree explored"): the
//! interval is divided into segments whose node densities span orders of
//! magnitude, so a worker cannot predict how long an interval will take
//! — exactly the load-balancing challenge the coordinator solves.
//!
//! Internally the model is a piecewise-linear CDF `F` over the unit
//! interval: an interval `[a, b)` of the tree carries
//! `(F(b/N!) − F(a/N!)) · total_nodes` node visits, and a worker that
//! explores `n` nodes starting at `a` ends at `F⁻¹(F(a/N!) + n/total)`.

use gridbnb_bigint::UBig;

/// Node-visit density over the root interval.
#[derive(Clone, Debug)]
pub struct WorkloadModel {
    root_length: UBig,
    total_nodes: f64,
    /// `cum[i]` = F(i / S); `cum[0] = 0`, `cum[S] = 1`, non-decreasing.
    cum: Vec<f64>,
}

impl WorkloadModel {
    /// Uniform density: every part of the tree costs the same.
    pub fn uniform(root_length: UBig, total_nodes: f64) -> Self {
        Self::from_weights(root_length, total_nodes, &[1.0])
    }

    /// Irregular density: `segments` regions with weights spanning
    /// roughly `10^spread` between lightest and heaviest, deterministic
    /// in `seed`.
    pub fn irregular(
        root_length: UBig,
        total_nodes: f64,
        segments: usize,
        spread: f64,
        seed: u64,
    ) -> Self {
        assert!(segments >= 1);
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            z as f64 / u64::MAX as f64
        };
        let weights: Vec<f64> = (0..segments).map(|_| 10f64.powf(next() * spread)).collect();
        Self::from_weights(root_length, total_nodes, &weights)
    }

    /// Builds from explicit non-negative segment weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn from_weights(root_length: UBig, total_nodes: f64, weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights zero");
        let mut cum = Vec::with_capacity(weights.len() + 1);
        cum.push(0.0);
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cum.push(acc.min(1.0));
        }
        *cum.last_mut().expect("nonempty") = 1.0;
        WorkloadModel {
            root_length,
            total_nodes,
            cum,
        }
    }

    /// Total node visits of the whole workload.
    pub fn total_nodes(&self) -> f64 {
        self.total_nodes
    }

    /// Length of the root interval.
    pub fn root_length(&self) -> &UBig {
        &self.root_length
    }

    /// Position → unit fraction.
    pub fn frac_of(&self, pos: &UBig) -> f64 {
        pos.ratio(&self.root_length).clamp(0.0, 1.0)
    }

    /// Unit fraction → position (monotone, floor rounding).
    pub fn pos_of_frac(&self, frac: f64) -> UBig {
        const SCALE: u64 = 1 << 53;
        let scaled = (frac.clamp(0.0, 1.0) * SCALE as f64).floor() as u64;
        self.root_length.mul_div_floor(scaled.min(SCALE), SCALE)
    }

    /// CDF: mass in `[0, u)`.
    pub fn cdf(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let s = self.cum.len() - 1;
        let x = u * s as f64;
        let i = (x.floor() as usize).min(s - 1);
        let t = x - i as f64;
        self.cum[i] + t * (self.cum[i + 1] - self.cum[i])
    }

    /// Inverse CDF.
    pub fn inv_cdf(&self, mass: f64) -> f64 {
        let m = mass.clamp(0.0, 1.0);
        let s = self.cum.len() - 1;
        // Find the segment containing m.
        let i = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&m).expect("no NaN"))
        {
            Ok(i) => i.min(s - 1),
            Err(i) => i.saturating_sub(1).min(s - 1),
        };
        let lo = self.cum[i];
        let hi = self.cum[i + 1];
        let t = if hi > lo { (m - lo) / (hi - lo) } else { 0.0 };
        ((i as f64 + t) / s as f64).clamp(0.0, 1.0)
    }

    /// Node visits required to explore the fraction range `[u0, u1)`.
    pub fn nodes_between(&self, u0: f64, u1: f64) -> f64 {
        if u1 <= u0 {
            return 0.0;
        }
        (self.cdf(u1) - self.cdf(u0)).max(0.0) * self.total_nodes
    }

    /// Where a worker ends after spending `nodes` node visits from `u0`,
    /// never beyond `u1`. Returns `(new_u, nodes_actually_spent)`.
    pub fn advance(&self, u0: f64, u1: f64, nodes: f64) -> (f64, f64) {
        let available = self.nodes_between(u0, u1);
        if nodes >= available {
            return (u1, available);
        }
        let target_mass = self.cdf(u0) + nodes / self.total_nodes;
        let new_u = self.inv_cdf(target_mass).clamp(u0, u1);
        (new_u, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WorkloadModel {
        WorkloadModel::from_weights(UBig::from(1_000_000u64), 1e6, &[1.0, 3.0, 1.0, 5.0])
    }

    #[test]
    fn cdf_endpoints() {
        let m = model();
        assert_eq!(m.cdf(0.0), 0.0);
        assert!((m.cdf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let m = WorkloadModel::irregular(UBig::from(1000u64), 1e9, 64, 3.0, 11);
        let mut last = -1.0;
        for k in 0..=1000 {
            let v = m.cdf(k as f64 / 1000.0);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn inv_cdf_inverts() {
        let m = model();
        for k in 0..=100 {
            let u = k as f64 / 100.0;
            let round = m.inv_cdf(m.cdf(u));
            assert!((round - u).abs() < 1e-9, "u={u} round={round}");
        }
    }

    #[test]
    fn nodes_between_splits_additively() {
        let m = model();
        let whole = m.nodes_between(0.1, 0.9);
        let split = m.nodes_between(0.1, 0.4) + m.nodes_between(0.4, 0.9);
        assert!((whole - split).abs() < 1e-6);
    }

    #[test]
    fn advance_consumes_exactly() {
        let m = model();
        let (u, spent) = m.advance(0.2, 1.0, 1234.0);
        assert!((spent - 1234.0).abs() < 1e-9);
        assert!((m.nodes_between(0.2, u) - 1234.0).abs() < 1e-6);
    }

    #[test]
    fn advance_caps_at_end() {
        let m = model();
        let available = m.nodes_between(0.2, 0.3);
        let (u, spent) = m.advance(0.2, 0.3, available * 10.0);
        assert_eq!(u, 0.3);
        assert!((spent - available).abs() < 1e-9);
    }

    #[test]
    fn frac_pos_round_trip() {
        let m = WorkloadModel::uniform(UBig::factorial(50), 1e12);
        for k in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let pos = m.pos_of_frac(k);
            let back = m.frac_of(&pos);
            assert!((back - k).abs() < 1e-9, "k={k} back={back}");
        }
    }

    #[test]
    fn pos_of_frac_is_monotone() {
        let m = WorkloadModel::uniform(UBig::factorial(20), 1e9);
        let mut last = UBig::zero();
        for k in 0..=1000 {
            let p = m.pos_of_frac(k as f64 / 1000.0);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn uniform_density_is_linear() {
        let m = WorkloadModel::uniform(UBig::from(100u64), 1000.0);
        assert!((m.nodes_between(0.0, 0.5) - 500.0).abs() < 1e-9);
        assert!((m.nodes_between(0.25, 0.75) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn irregular_is_deterministic() {
        let a = WorkloadModel::irregular(UBig::from(10u64), 1e6, 32, 2.0, 5);
        let b = WorkloadModel::irregular(UBig::from(10u64), 1e6, 32, 2.0, 5);
        assert_eq!(a.cdf(0.37), b.cdf(0.37));
    }

    #[test]
    fn irregular_spread_creates_imbalance() {
        let m = WorkloadModel::irregular(UBig::from(10u64), 1e6, 128, 3.0, 5);
        // Some equal-length windows must differ in cost by > 5x.
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for k in 0..64 {
            let u0 = k as f64 / 64.0;
            let n = m.nodes_between(u0, u0 + 1.0 / 64.0);
            min = min.min(n);
            max = max.max(n);
        }
        assert!(max / min.max(1e-12) > 5.0, "spread {}..{}", min, max);
    }
}
