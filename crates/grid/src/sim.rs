//! The discrete-event grid simulator.
//!
//! Drives the *real* [`Coordinator`] (the same state machine the thread
//! runtime uses) with thousands of simulated volatile heterogeneous
//! workers speaking the pull-model protocol over simulated network
//! latencies. Reproduces the shape of the paper's Table 2 (execution
//! statistics) and Figure 7 (available processors over time).
//!
//! Time is virtual (`u64` nanoseconds); the exploration effort comes
//! from a [`WorkloadModel`]. One simulated worker = one processor of the
//! pool; it joins when its host becomes available (cycle stealing),
//! explores its interval at `ghz × base_nodes_per_sec_per_ghz` node
//! visits per second, contacts the farmer every `update_period_s`, and
//! silently loses its state when the host is reclaimed.

use crate::net::LatencyModel;
use crate::pool::GridPool;
use crate::volatility::{AvailabilitySampler, VolatilityModel};
use crate::workload::WorkloadModel;
use gridbnb_core::{
    CoordinatorConfig, CoordinatorStats, Interval, MetricsRegistry, Request, Response,
    ShardEnvelope, ShardRouter, WorkerId,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine pool (e.g. [`crate::pool::paper_pool`]).
    pub pool: GridPool,
    /// Host availability model.
    pub volatility: VolatilityModel,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Node visits per second per GHz. The paper explored ≈6.5·10¹²
    /// nodes in ≈22 CPU-years: ≈9 400 nodes/s on an average ≈2.2 GHz
    /// processor, i.e. ≈4 300 nodes/s/GHz (the Johnson bound is
    /// expensive).
    pub base_nodes_per_sec_per_ghz: f64,
    /// Seconds between a worker's farmer contacts.
    pub update_period_s: f64,
    /// Farmer CPU time per handled request, microseconds.
    pub farmer_service_us: f64,
    /// Farmer checkpoint period (paper: 30 minutes).
    pub farmer_checkpoint_period_s: f64,
    /// Farmer CPU time per checkpoint, seconds.
    pub farmer_checkpoint_cost_s: f64,
    /// Coordinator knobs (duplication threshold, holder timeout).
    pub coordinator: CoordinatorConfig,
    /// Coordinator shards: the root range is partitioned across this
    /// many independent coordinators with work stealing between them
    /// (1 = the paper's single farmer).
    pub shards: usize,
    /// Checkpoint (update) operations delivered per coordinator
    /// contact. At 1 (the paper's behavior) every periodic update is
    /// its own simulator event and its own farmer contact; at `B > 1` a
    /// worker explores `B` update periods per event and delivers the
    /// `B` interval snapshots as **one** batched contact
    /// ([`gridbnb_core::ShardRouter::handle_bundle`]) — the coordinator
    /// still processes the paper's per-op contact *rates* (the
    /// `updates` counter is comparable), but the simulator pays one
    /// event and the farmer one lock acquisition per batch. The
    /// effective batch is clamped so a worker's silence never exceeds
    /// half the holder timeout (a longer window would get every healthy
    /// batched worker expired mid-window by the sweep).
    pub contact_batch: usize,
    /// Cross-worker contact gateway fan-in (0 disables — the default).
    /// At `F ≥ 1` a worker's periodic update snapshots are no longer
    /// delivered at its own Step event: they are queued on the home
    /// shard's gateway queue, and a queue is delivered as **one shared
    /// [`gridbnb_core::ShardRouter::handle_bundle`] bundle** once it
    /// holds `F` snapshots (size trigger) — one farmer lock acquisition
    /// for many workers' traffic. A recurring flush event sweeps queues
    /// whose oldest snapshot has aged one batch window (the deadline
    /// trigger), and a worker's termination-sensitive contacts (`Join`
    /// / `RequestWork`) first *purge* its own still-queued snapshots of
    /// the current incarnation — the completed unit subsumes them, and
    /// delivering them after the next allocation could shrink the new
    /// unit with stale ranges. Acks are applied to each contributing
    /// worker at flush time (skipped if the host went down in between).
    /// Composes with [`SimConfig::contact_batch`]: a worker queues `B`
    /// snapshots per event, the gateway merges workers.
    pub gateway_fan_in: usize,
    /// Pooled-bounding width of the simulated B&B processes: how many
    /// sibling states each worker's explorer bounds per
    /// `lower_bound_batch` call. The rate model does not re-simulate
    /// node order, so this only drives the derived
    /// [`SimReport::bound_batches`] model quantity (and documents the
    /// engine configuration a campaign would run); 1 = scalar bounding.
    pub pool_width: usize,
    /// Shared metrics registry. When set, the simulated coordinator's
    /// shard/router metrics land here alongside per-kind
    /// `gbnb_sim_events_total` counters for the event loop itself, so
    /// a campaign harness can scrape the virtual deployment exactly as
    /// it scrapes a live one. `None` keeps a private registry.
    pub metrics: Option<MetricsRegistry>,
    /// Metrics sampling period (Figure 7 resolution).
    pub sample_period_s: f64,
    /// RNG seed for availability.
    pub seed: u64,
    /// Hard stop (safety net; the run normally terminates by itself).
    pub max_sim_days: f64,
}

impl SimConfig {
    /// Reasonable defaults for a given pool and workload scale.
    pub fn new(pool: GridPool) -> Self {
        SimConfig {
            pool,
            volatility: VolatilityModel::default(),
            latency: LatencyModel::default(),
            base_nodes_per_sec_per_ghz: 4_300.0,
            update_period_s: 60.0,
            farmer_service_us: 3_000.0,
            farmer_checkpoint_period_s: 30.0 * 60.0,
            farmer_checkpoint_cost_s: 0.5,
            coordinator: CoordinatorConfig::default(),
            shards: 1,
            contact_batch: 1,
            gateway_fan_in: 0,
            pool_width: 1,
            metrics: None,
            sample_period_s: 3_600.0,
            seed: 2006,
            max_sim_days: 400.0,
        }
    }
}

/// One point of the Figure 7 series.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Simulated time, seconds since start.
    pub t_s: f64,
    /// Hosts online (available to the computation).
    pub online: usize,
    /// Hosts actually holding a work unit.
    pub exploited: usize,
}

/// Aggregated outcome of a simulated run (Table 2 rows).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Wall-clock (simulated) duration, seconds.
    pub wall_s: f64,
    /// Cumulative exploration CPU time, seconds (paper: "22 years").
    pub cpu_s: f64,
    /// Average number of online workers (paper: 328).
    pub avg_workers: f64,
    /// Peak online workers (paper: 1 195).
    pub max_workers: usize,
    /// Busy / online time ratio of workers (paper: 97 %).
    pub worker_exploitation: f64,
    /// Farmer busy / wall ratio (paper: 1.7 %).
    pub farmer_exploitation: f64,
    /// Worker-side checkpoint (update) operations (paper: 4 094 176 in
    /// total with ~2 M by B&B processes).
    pub checkpoint_ops: u64,
    /// Total coordinator contacts (lock-acquiring request or bundle
    /// deliveries). At `contact_batch = 1` every protocol op is its own
    /// contact; with batching this is the amortized — much smaller —
    /// number the farmer actually serves.
    pub contacts: u64,
    /// Farmer file checkpoints written.
    pub farmer_checkpoints: u64,
    /// Work allocations (paper: 129 958).
    pub work_allocations: u64,
    /// Total node visits performed (paper: 6.5·10¹²).
    pub explored_nodes: f64,
    /// States evaluated by the bounding operator — a *model* quantity:
    /// the rate simulator does not replay the node order, so this is
    /// simply [`SimReport::explored_nodes`] (every visit is bounded
    /// once; fill-time over-count under steals is below the model's
    /// resolution).
    pub nodes_bounded: f64,
    /// `lower_bound_batch` invocations implied by the configured
    /// [`SimConfig::pool_width`] — a model quantity:
    /// `nodes_bounded / pool_width`.
    pub bound_batches: f64,
    /// Fraction of node visits that were redundant (paper: 0.39 %).
    pub redundant_ratio: f64,
    /// Figure 7 series.
    pub samples: Vec<Sample>,
    /// Raw coordinator counters (summed over shards when sharded).
    pub coordinator_stats: CoordinatorStats,
    /// Cross-shard work steals (0 when `shards` is 1).
    pub steals: u64,
    /// The proven best cost at the end of the run — the router's cutoff
    /// (the initial upper bound, tightened by any reported solution).
    /// Batching and gateway modes must leave it untouched; tests pin it.
    pub best_cost: Option<u64>,
    /// Whether the exploration completed (vs hit `max_sim_days`).
    pub completed: bool,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EventKind {
    HostUp(usize),
    HostDown(usize, u64),
    /// Worker finished an exploration slice and contacts the farmer.
    Step(usize, u64),
    /// Deadline sweep of the gateway queues (gateway mode only): every
    /// non-empty per-shard queue is delivered as one shared bundle, so
    /// a queue that never reaches the fan-in still drains within one
    /// update period.
    GatewayFlush,
    Sweep,
    Checkpoint,
    Sample,
}

struct HeapItem {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Unit {
    live: Interval,
    u_pos: f64,
    u_end: f64,
}

struct SimWorker {
    cluster: usize,
    rate_nodes_per_s: f64,
    latency_ns: u64,
    online: bool,
    done: bool,
    joined: bool,
    epoch: u64,
    id: WorkerId,
    unit: Option<Unit>,
    slice_start_ns: u64,
    busy_ns: u64,
    online_ns: u64,
    online_since_ns: u64,
}

/// Runs the simulation to termination (or the safety cap).
pub fn simulate(config: &SimConfig, workload: &WorkloadModel) -> SimReport {
    let procs = config.pool.processors();
    let mut sampler = AvailabilitySampler::new(config.seed);
    // Invalid configs fail fast here (satisfying CoordinatorConfig's
    // documented contract) instead of being silently clamped.
    let mut coordinator = ShardRouter::new(
        Interval::new(gridbnb_core::UBig::zero(), workload.root_length().clone()),
        config.shards,
        config.coordinator.clone(),
    )
    .expect("invalid sim coordinator config");
    if let Some(registry) = &config.metrics {
        coordinator = coordinator.with_metrics(registry);
    }
    let registry = coordinator.metrics().clone();
    let sim_event = |kind: &str| registry.counter("gbnb_sim_events_total", &[("kind", kind)]);
    let ev_host_up = sim_event("host_up");
    let ev_host_down = sim_event("host_down");
    let ev_step = sim_event("step");
    let ev_gateway_flush = sim_event("gateway_flush");
    let ev_sweep = sim_event("sweep");
    let ev_checkpoint = sim_event("checkpoint");
    let ev_sample = sim_event("sample");

    let mut queue: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |queue: &mut BinaryHeap<HeapItem>, seq: &mut u64, time: u64, kind: EventKind| {
        *seq += 1;
        queue.push(HeapItem {
            time,
            seq: *seq,
            kind,
        });
    };

    let mut next_id = procs.len() as u64;
    let mut workers: Vec<SimWorker> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| SimWorker {
            cluster: p.cluster,
            rate_nodes_per_s: p.ghz * config.base_nodes_per_sec_per_ghz,
            latency_ns: config.latency.to_farmer_ns(&config.pool, p.cluster),
            online: false,
            done: false,
            joined: false,
            epoch: 0,
            id: WorkerId(i as u64),
            unit: None,
            slice_start_ns: 0,
            busy_ns: 0,
            online_ns: 0,
            online_since_ns: 0,
        })
        .collect();

    // Initial joins over the ramp-up window.
    for i in 0..workers.len() {
        if sampler.participates(config.volatility.participation) {
            let t = sampler.initial_join_ns(config.volatility.rampup_s);
            push(&mut queue, &mut seq, t, EventKind::HostUp(i));
        }
    }
    let sweep_period_ns = (config.coordinator.holder_timeout_ns / 2).max(1_000_000_000);
    push(&mut queue, &mut seq, sweep_period_ns, EventKind::Sweep);
    push(
        &mut queue,
        &mut seq,
        (config.farmer_checkpoint_period_s * 1e9) as u64,
        EventKind::Checkpoint,
    );
    push(
        &mut queue,
        &mut seq,
        (config.sample_period_s * 1e9) as u64,
        EventKind::Sample,
    );

    let max_ns = (config.max_sim_days * 86_400.0 * 1e9) as u64;
    let update_period_ns = (config.update_period_s * 1e9).max(1.0) as u64;
    let service_ns = (config.farmer_service_us * 1e3) as u64;

    // Gateway mode: per-shard FIFO queues of (worker index, epoch,
    // enqueue stamp, snapshot envelope) awaiting a shared-bundle
    // delivery; the head entry is always the oldest. The deadline
    // sweep only delivers queues whose head has aged one worker batch
    // window — flushing every queue every period would re-create the
    // per-worker contact rate the gateway exists to amortize. By the
    // batch clamp that window is at most half the holder timeout, so
    // queued-but-unflushed snapshots can never get their healthy
    // senders expired.
    let gateway_fan_in = config.gateway_fan_in;
    let effective_batch = (config.contact_batch.max(1) as u64).min(
        (config.coordinator.holder_timeout_ns / 2)
            .checked_div(update_period_ns)
            .unwrap_or(1)
            .max(1),
    );
    let gateway_deadline_ns = update_period_ns.saturating_mul(effective_batch);
    let mut gateway_queues: Vec<Vec<(usize, u64, u64, ShardEnvelope)>> = if gateway_fan_in >= 1 {
        push(
            &mut queue,
            &mut seq,
            update_period_ns,
            EventKind::GatewayFlush,
        );
        vec![Vec::new(); config.shards]
    } else {
        Vec::new()
    };

    let mut farmer_busy_ns = 0u64;
    let mut farmer_checkpoints = 0u64;
    let mut checkpoint_ops = 0u64;
    let mut explored_nodes = 0f64;
    let mut samples = Vec::new();
    let mut now = 0u64;
    let mut completed = false;

    while let Some(item) = queue.pop() {
        now = item.time;
        if now > max_ns {
            break;
        }
        if coordinator.is_terminated() {
            completed = true;
            break;
        }
        match item.kind {
            EventKind::HostUp(_) => ev_host_up.inc(),
            EventKind::HostDown(..) => ev_host_down.inc(),
            EventKind::Step(..) => ev_step.inc(),
            EventKind::GatewayFlush => ev_gateway_flush.inc(),
            EventKind::Sweep => ev_sweep.inc(),
            EventKind::Checkpoint => ev_checkpoint.inc(),
            EventKind::Sample => ev_sample.inc(),
        }
        match item.kind {
            EventKind::HostUp(w) => {
                let worker = &mut workers[w];
                if worker.done || worker.online {
                    continue;
                }
                worker.online = true;
                worker.online_since_ns = now;
                worker.epoch += 1;
                worker.id = WorkerId(next_id);
                next_id += 1;
                worker.joined = false;
                worker.unit = None;
                worker.slice_start_ns = now;
                let epoch = worker.epoch;
                // Contact the farmer right away (Join).
                push(&mut queue, &mut seq, now, EventKind::Step(w, epoch));
                // Schedule the end of this availability period.
                let profile = config
                    .volatility
                    .profile(config.pool.clusters[worker.cluster].kind);
                let up = sampler.up_period_ns(&profile);
                push(
                    &mut queue,
                    &mut seq,
                    now.saturating_add(up),
                    EventKind::HostDown(w, epoch),
                );
            }
            EventKind::HostDown(w, epoch) => {
                let worker = &mut workers[w];
                if worker.done || !worker.online || worker.epoch != epoch {
                    continue;
                }
                // Apply the partial slice explored before the failure —
                // the work happened, but its result is lost (the
                // coordinator copy still has the last reported state, so
                // the tail is re-explored by someone else: redundancy).
                if worker.unit.is_some() {
                    let spent = apply_exploration(worker, workload, now);
                    explored_nodes += spent;
                }
                worker.online = false;
                worker.unit = None;
                worker.online_ns += now - worker.online_since_ns;
                worker.epoch += 1;
                let profile = config
                    .volatility
                    .profile(config.pool.clusters[worker.cluster].kind);
                let down = sampler.down_period_ns(&profile, now);
                push(
                    &mut queue,
                    &mut seq,
                    now.saturating_add(down),
                    EventKind::HostUp(w),
                );
            }
            EventKind::Step(w, epoch) => {
                // 1. Account the exploration slice that just ended and
                //    choose the message(s), under a scoped borrow of
                //    the stepping worker (a gateway flush needs the
                //    whole worker set afterwards). Join and RequestWork
                //    are termination-sensitive and always go out alone
                //    (in gateway mode they drain the home queue first);
                //    periodic checkpoints coalesce `contact_batch`
                //    update periods into one batched contact or gateway
                //    enqueue. The pre-slice position is kept so the
                //    batched snapshots can be reconstructed.
                let (work_request, snapshots, handle_at, batch) = {
                    let worker = &mut workers[w];
                    if worker.done || !worker.online || worker.epoch != epoch {
                        continue;
                    }
                    let prev_begin = worker.unit.as_ref().map(|u| u.live.begin().clone());
                    if worker.unit.is_some() {
                        let spent = apply_exploration(worker, workload, now);
                        explored_nodes += spent;
                    }
                    let exhausted = match &worker.unit {
                        Some(u) => {
                            workload.nodes_between(u.u_pos, u.u_end) <= 0.0 || u.live.is_empty()
                        }
                        None => true,
                    };
                    // Cap the batch so the extended silence stays within
                    // half the holder timeout — otherwise every batched
                    // worker would be expired mid-window by the sweep and
                    // its whole window of snapshots would hit empty acks
                    // (the runtime's max_silence clamp, sim-side).
                    let max_batch = (config.coordinator.holder_timeout_ns / 2)
                        .checked_div(update_period_ns)
                        .unwrap_or(1)
                        .max(1);
                    let batch = (config.contact_batch.max(1) as u64).min(max_batch);
                    // Farmer handles after the one-way latency.
                    let handle_at = now + worker.latency_ns;
                    if !worker.joined || exhausted {
                        let request = if !worker.joined {
                            Request::Join {
                                worker: worker.id,
                                power: (worker.rate_nodes_per_s / 100.0).max(1.0) as u64,
                            }
                        } else {
                            Request::RequestWork {
                                worker: worker.id,
                                power: (worker.rate_nodes_per_s / 100.0).max(1.0) as u64,
                            }
                        };
                        (Some(request), Vec::new(), handle_at, batch)
                    } else if batch > 1 {
                        // The slice spanned `batch` update periods;
                        // reconstruct the periodic snapshots it would
                        // have sent — begin interpolated from pre-slice
                        // to current position. Per-op farmer load is
                        // unchanged (the paper's contact *rates* stay
                        // comparable), but the simulator pays one event
                        // and the farmer one lock acquisition.
                        let unit = worker.unit.as_ref().expect("unit");
                        let prev = prev_begin.expect("pre-slice begin of a held unit");
                        let advanced = unit.live.begin().saturating_sub(&prev);
                        let end = unit.live.end().clone();
                        let snapshots: Vec<Interval> = (1..=batch)
                            .map(|i| {
                                Interval::new(
                                    prev.add(&advanced.mul_div_floor(i, batch)),
                                    end.clone(),
                                )
                            })
                            .collect();
                        (None, snapshots, handle_at, batch)
                    } else {
                        let live = worker.unit.as_ref().expect("unit").live.clone();
                        (None, vec![live], handle_at, batch)
                    }
                };
                // 2. Deliver: a synchronous contact (work requests and
                //    direct update delivery), or a one-way gateway
                //    enqueue whose ack arrives at flush time.
                let response = if let Some(request) = work_request {
                    if gateway_fan_in >= 1 {
                        // Purge this worker's own queued snapshots of
                        // the current epoch: they describe the unit the
                        // work request is about to complete (or the
                        // identity a Join resets), so delivering them
                        // later could cross a unit boundary and shrink
                        // the *next* unit with stale ranges. Dropping
                        // them is exactly the completion subsuming
                        // them; other workers' queued traffic keeps
                        // aggregating toward the fan-in. Snapshots from
                        // a previous epoch (a crashed incarnation) stay
                        // queued on purpose — their old worker id still
                        // maps to the old entry, so late delivery only
                        // applies progress that genuinely happened.
                        let home = coordinator.route(request.worker()).0 as usize;
                        gateway_queues[home].retain(|(qw, qe, _, _)| !(*qw == w && *qe == epoch));
                    }
                    let served = coordinator.handle(request, handle_at);
                    workers[w].joined = true;
                    Some((served, service_ns))
                } else if gateway_fan_in >= 1 {
                    // Gateway mode: queue the snapshots on the home
                    // shard and keep exploring — many workers' queued
                    // snapshots are delivered as one shared bundle when
                    // the queue reaches the fan-in (or at the deadline
                    // sweep), and the acks are applied then.
                    checkpoint_ops += batch;
                    let id = workers[w].id;
                    let home = coordinator.route(id).0 as usize;
                    for snapshot in snapshots {
                        gateway_queues[home].push((
                            w,
                            epoch,
                            now,
                            coordinator.envelope(Request::Update {
                                worker: id,
                                interval: snapshot,
                            }),
                        ));
                    }
                    if gateway_queues[home].len() >= gateway_fan_in {
                        farmer_busy_ns += flush_gateway_queue(
                            &coordinator,
                            &mut gateway_queues,
                            home,
                            &mut workers,
                            workload,
                            handle_at,
                            service_ns,
                        );
                    }
                    None
                } else if batch > 1 {
                    checkpoint_ops += batch;
                    let id = workers[w].id;
                    let bundle: Vec<_> = snapshots
                        .into_iter()
                        .map(|interval| {
                            coordinator.envelope(Request::Update {
                                worker: id,
                                interval,
                            })
                        })
                        .collect();
                    let mut responses = coordinator.handle_bundle(bundle, handle_at);
                    // The last ack reflects the final snapshot — the
                    // worker's authoritative post-contact state.
                    let served = responses.pop().expect("a response per envelope").1;
                    Some((served, service_ns * batch))
                } else {
                    checkpoint_ops += 1;
                    let id = workers[w].id;
                    let interval = snapshots.into_iter().next().expect("one snapshot");
                    let served = coordinator.handle(
                        Request::Update {
                            worker: id,
                            interval,
                        },
                        handle_at,
                    );
                    Some((served, service_ns))
                };
                // 3. Apply the reply (if any) and schedule the next
                //    slice end. A gateway enqueue is one-way: the
                //    worker resumes immediately, no round-trip paid.
                let worker = &mut workers[w];
                let resume_at = match response {
                    Some((response, service_total)) => {
                        farmer_busy_ns += service_total;
                        let resume_at = handle_at + service_total + worker.latency_ns;
                        match response {
                            Response::Work { interval, .. } => {
                                let u_pos = workload.frac_of(interval.begin());
                                let u_end = workload.frac_of(interval.end());
                                worker.unit = Some(Unit {
                                    live: interval,
                                    u_pos,
                                    u_end,
                                });
                            }
                            Response::UpdateAck { interval, .. } => {
                                assert!(worker.unit.is_some(), "update with unit");
                                apply_update_ack(worker, workload, &interval);
                            }
                            Response::Terminate => {
                                worker.done = true;
                                worker.online_ns +=
                                    resume_at.saturating_sub(worker.online_since_ns);
                                worker.online = false;
                                continue;
                            }
                            // Sharded endgame backpressure: no unit, so
                            // the no-unit branch below re-asks after a
                            // beat.
                            Response::Retry => {}
                            Response::SolutionAck { .. } | Response::LeaveAck => {}
                        }
                        resume_at
                    }
                    None => now,
                };
                worker.slice_start_ns = resume_at;
                let slice_ns = match &worker.unit {
                    Some(u) => {
                        let available = workload.nodes_between(u.u_pos, u.u_end);
                        let need_s = available / worker.rate_nodes_per_s.max(1e-9);
                        // With batching the worker stays silent for
                        // `batch` update periods and reports them all
                        // at the next contact.
                        ((need_s * 1e9) as u64)
                            .min(update_period_ns.saturating_mul(batch))
                            .max(1)
                    }
                    // No unit (fully stolen): ask again immediately.
                    None => 1,
                };
                push(
                    &mut queue,
                    &mut seq,
                    resume_at + slice_ns,
                    EventKind::Step(w, epoch),
                );
            }
            EventKind::GatewayFlush => {
                // Deadline sweep: only queues whose oldest snapshot has
                // aged one batch window are delivered — a fresher queue
                // keeps filling towards the fan-in (flushing everything
                // every period would re-create the per-worker contact
                // rate the gateway exists to amortize).
                for shard in 0..gateway_queues.len() {
                    let stale = gateway_queues[shard]
                        .first()
                        .is_some_and(|&(_, _, t, _)| now.saturating_sub(t) >= gateway_deadline_ns);
                    if !stale {
                        continue;
                    }
                    farmer_busy_ns += flush_gateway_queue(
                        &coordinator,
                        &mut gateway_queues,
                        shard,
                        &mut workers,
                        workload,
                        now,
                        service_ns,
                    );
                }
                push(
                    &mut queue,
                    &mut seq,
                    now + update_period_ns,
                    EventKind::GatewayFlush,
                );
            }
            EventKind::Sweep => {
                // Periodic, not exact-time: workers whose update period
                // equals the holder timeout hover at the expiry boundary,
                // and sweeping the instant they cross it would expire
                // live-but-latent workers every cycle. The period keeps
                // the old grace window; the coordinator's heartbeat index
                // makes each sweep O(stale holders) instead of a scan of
                // all of `INTERVALS`, so sweeps are cheap even when the
                // pool is large and nothing is stale.
                coordinator.expire_stale_holders(now);
                farmer_busy_ns += service_ns;
                push(
                    &mut queue,
                    &mut seq,
                    now + sweep_period_ns,
                    EventKind::Sweep,
                );
            }
            EventKind::Checkpoint => {
                farmer_checkpoints += 1;
                farmer_busy_ns += (config.farmer_checkpoint_cost_s * 1e9) as u64;
                push(
                    &mut queue,
                    &mut seq,
                    now + (config.farmer_checkpoint_period_s * 1e9) as u64,
                    EventKind::Checkpoint,
                );
            }
            EventKind::Sample => {
                let online = workers.iter().filter(|w| w.online).count();
                let exploited = workers
                    .iter()
                    .filter(|w| w.online && w.unit.is_some())
                    .count();
                samples.push(Sample {
                    t_s: now as f64 / 1e9,
                    online,
                    exploited,
                });
                push(
                    &mut queue,
                    &mut seq,
                    now + (config.sample_period_s * 1e9) as u64,
                    EventKind::Sample,
                );
            }
        }
    }

    // Close the books on still-online workers.
    for w in &mut workers {
        if w.online {
            w.online_ns += now.saturating_sub(w.online_since_ns);
        }
    }

    let wall_s = now as f64 / 1e9;
    let busy_s: f64 = workers.iter().map(|w| w.busy_ns as f64 / 1e9).sum();
    let online_s: f64 = workers.iter().map(|w| w.online_ns as f64 / 1e9).sum();
    let avg_workers = if wall_s > 0.0 { online_s / wall_s } else { 0.0 };
    let max_workers = samples.iter().map(|s| s.online).max().unwrap_or(0);
    let total = workload.total_nodes();
    let redundant_ratio = if explored_nodes > total {
        (explored_nodes - total) / explored_nodes
    } else {
        0.0
    };
    SimReport {
        wall_s,
        cpu_s: busy_s,
        avg_workers,
        max_workers,
        worker_exploitation: if online_s > 0.0 {
            busy_s / online_s
        } else {
            0.0
        },
        farmer_exploitation: if wall_s > 0.0 {
            (farmer_busy_ns as f64 / 1e9) / wall_s
        } else {
            0.0
        },
        checkpoint_ops,
        contacts: coordinator.contacts(),
        farmer_checkpoints,
        work_allocations: coordinator.stats().work_allocations,
        explored_nodes,
        nodes_bounded: explored_nodes,
        bound_batches: explored_nodes / config.pool_width.max(1) as f64,
        redundant_ratio,
        samples,
        coordinator_stats: coordinator.stats(),
        steals: coordinator.steals(),
        best_cost: coordinator.cutoff(),
        completed: completed || coordinator.is_terminated(),
    }
}

/// Delivers one gateway queue as a single shared bundle (gateway mode):
/// every queued snapshot of every contributing worker goes through one
/// [`ShardRouter::handle_bundle`] call — one farmer lock acquisition —
/// and each ack is applied to its worker, skipped when the host went
/// down or rejoined since enqueueing (a new epoch means the snapshot
/// belongs to a dead incarnation; the coordinator-side shrink stands
/// either way, since the exploration it reports really happened).
/// Returns the farmer CPU time spent; an empty queue is free.
fn flush_gateway_queue(
    router: &ShardRouter,
    queues: &mut [Vec<(usize, u64, u64, ShardEnvelope)>],
    shard: usize,
    workers: &mut [SimWorker],
    workload: &WorkloadModel,
    now: u64,
    service_ns: u64,
) -> u64 {
    let queued = std::mem::take(&mut queues[shard]);
    if queued.is_empty() {
        return 0;
    }
    let ops = queued.len() as u64;
    let mut tags = Vec::with_capacity(queued.len());
    let mut bundle = Vec::with_capacity(queued.len());
    for (w, epoch, _, envelope) in queued {
        tags.push((w, epoch));
        bundle.push(envelope);
    }
    let responses = router.handle_bundle(bundle, now);
    for ((w, epoch), (_, response)) in tags.into_iter().zip(responses) {
        let worker = &mut workers[w];
        if worker.done || !worker.online || worker.epoch != epoch {
            continue;
        }
        if let Response::UpdateAck { interval, .. } = response {
            apply_update_ack(worker, workload, &interval);
        }
    }
    service_ns * ops
}

/// Applies an `UpdateAck`'s intersected interval to a worker's live
/// unit — shared by the synchronous Step reply path and the gateway
/// flush, so the two delivery modes cannot diverge: an empty
/// intersection drops the unit (completed or fully stolen elsewhere);
/// otherwise the end retreats and the workload fraction is refreshed.
fn apply_update_ack(worker: &mut SimWorker, workload: &WorkloadModel, interval: &Interval) {
    let Some(unit) = worker.unit.as_mut() else {
        return;
    };
    if interval.is_empty() {
        worker.unit = None;
    } else {
        unit.live.retreat_end(interval.end());
        unit.u_end = workload.frac_of(unit.live.end());
        if unit.live.is_empty() {
            worker.unit = None;
        }
    }
}

/// Advances the worker's unit for the slice `[slice_start, now)`;
/// returns node visits spent. Updates busy time and the live interval's
/// begin (monotone).
fn apply_exploration(worker: &mut SimWorker, workload: &WorkloadModel, now: u64) -> f64 {
    let unit = worker.unit.as_mut().expect("exploring without a unit");
    let dt_s = now.saturating_sub(worker.slice_start_ns) as f64 / 1e9;
    let budget = dt_s * worker.rate_nodes_per_s;
    let (new_u, spent) = workload.advance(unit.u_pos, unit.u_end, budget);
    unit.u_pos = new_u;
    let new_begin = workload.pos_of_frac(new_u);
    unit.live.advance_begin(&new_begin);
    // Busy only for the time actually needed.
    let busy_s = if budget > 0.0 {
        dt_s * (spent / budget).min(1.0)
    } else {
        0.0
    };
    worker.busy_ns += (busy_s * 1e9) as u64;
    worker.slice_start_ns = now;
    spent
}
