//! Grid pool descriptions — the paper's Table 1 encoded as data.
//!
//! The experimental platform was 1889 processors across 9 administrative
//! domains: three campus clusters of Université de Lille 1 (IEEA-FIL,
//! Polytech'Lille, IUT-A) and six Grid'5000 clusters (Bordeaux, Lille,
//! Rennes, Sophia, Toulouse, Orsay). Campus machines are volatile
//! mono-processor desktops harvested by cycle stealing; Grid'5000 nodes
//! are dedicated bi-processors.

/// One hardware row of Table 1: a group of identical processors.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuGroup {
    /// CPU model as printed in the paper (e.g. `"P4"`, `"AMD"`).
    pub model: &'static str,
    /// Clock in GHz (the relative-power measure used for partitioning).
    pub ghz: f64,
    /// Number of processors in the group.
    pub processors: usize,
}

/// Volatility class of a cluster, driving the availability model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterKind {
    /// Educational desktop pools: harvested when idle, frequently
    /// reclaimed (high churn; strong diurnal pattern).
    Campus,
    /// Grid'5000 reserved nodes: long stable sessions, occasional
    /// maintenance (low churn).
    Dedicated,
}

/// One administrative domain (cluster) of the pool.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Cluster name (paper's "Domain" column).
    pub name: &'static str,
    /// Hosting site, for the latency model.
    pub site: &'static str,
    /// Volatility class.
    pub kind: ClusterKind,
    /// Hardware groups in this cluster.
    pub groups: Vec<CpuGroup>,
}

impl Cluster {
    /// Total processors in the cluster.
    pub fn processors(&self) -> usize {
        self.groups.iter().map(|g| g.processors).sum()
    }

    /// Sum of GHz over all processors (aggregate power).
    pub fn total_ghz(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.ghz * g.processors as f64)
            .sum()
    }
}

/// A full grid pool.
#[derive(Clone, Debug)]
pub struct GridPool {
    /// The clusters (administrative domains).
    pub clusters: Vec<Cluster>,
}

impl GridPool {
    /// Total processors (paper: 1889).
    pub fn total_processors(&self) -> usize {
        self.clusters.iter().map(|c| c.processors()).sum()
    }

    /// Aggregate GHz of the pool.
    pub fn total_ghz(&self) -> f64 {
        self.clusters.iter().map(|c| c.total_ghz()).sum()
    }

    /// Flattens into per-processor records `(cluster index, ghz)`,
    /// in deterministic order.
    pub fn processors(&self) -> Vec<ProcessorSpec> {
        let mut out = Vec::with_capacity(self.total_processors());
        for (ci, cluster) in self.clusters.iter().enumerate() {
            for group in &cluster.groups {
                for _ in 0..group.processors {
                    out.push(ProcessorSpec {
                        cluster: ci,
                        ghz: group.ghz,
                    });
                }
            }
        }
        out
    }

    /// A proportionally scaled-down pool: every group keeps
    /// `ceil(processors / factor)` processors. Used to run the Table 2
    /// simulation quickly at reduced scale while preserving the
    /// heterogeneity profile.
    pub fn scaled_down(&self, factor: usize) -> GridPool {
        assert!(factor >= 1);
        GridPool {
            clusters: self
                .clusters
                .iter()
                .map(|c| Cluster {
                    name: c.name,
                    site: c.site,
                    kind: c.kind,
                    groups: c
                        .groups
                        .iter()
                        .map(|g| CpuGroup {
                            model: g.model,
                            ghz: g.ghz,
                            processors: g.processors.div_ceil(factor),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One processor slot of the flattened pool.
#[derive(Clone, Copy, Debug)]
pub struct ProcessorSpec {
    /// Index into [`GridPool::clusters`].
    pub cluster: usize,
    /// Clock in GHz.
    pub ghz: f64,
}

/// The exact pool of the paper's Table 1 (1889 processors, 9 domains).
pub fn paper_pool() -> GridPool {
    use ClusterKind::{Campus, Dedicated};
    let g = |model, ghz, processors| CpuGroup {
        model,
        ghz,
        processors,
    };
    GridPool {
        clusters: vec![
            Cluster {
                name: "IEEA-FIL",
                site: "Lille1",
                kind: Campus,
                groups: vec![
                    g("P4", 1.70, 24),
                    g("P4", 2.40, 48),
                    g("P4", 2.80, 59),
                    g("P4", 3.00, 27),
                    g("AMD", 1.30, 14),
                ],
            },
            Cluster {
                name: "Polytech'Lille",
                site: "Lille1",
                kind: Campus,
                groups: vec![
                    g("Celeron", 2.40, 35),
                    g("Celeron", 0.80, 14),
                    g("Celeron", 2.00, 13),
                    g("Celeron", 2.20, 28),
                    g("P3", 1.20, 12),
                    g("P4", 3.20, 12),
                ],
            },
            Cluster {
                name: "IUT-A",
                site: "Lille1",
                kind: Campus,
                groups: vec![
                    g("P4", 1.60, 22),
                    g("P4", 2.00, 18),
                    g("P4", 2.80, 45),
                    g("P4", 2.66, 57),
                    g("P4", 3.00, 41),
                ],
            },
            Cluster {
                name: "Bordeaux",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("AMD", 2.20, 2 * 47)],
            },
            Cluster {
                name: "Lille",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("AMD", 2.20, 2 * 54)],
            },
            Cluster {
                name: "Rennes",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("Xeon", 2.40, 2 * 64), g("AMD", 2.20, 2 * 64)],
            },
            Cluster {
                name: "Sophia",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("AMD", 2.00, 2 * 100), g("AMD", 2.00, 2 * 107)],
            },
            Cluster {
                name: "Toulouse",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("AMD", 2.20, 2 * 58)],
            },
            Cluster {
                name: "Orsay",
                site: "Grid5000",
                kind: Dedicated,
                groups: vec![g("AMD", 2.00, 2 * 216)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pool_totals_1889() {
        // Table 1's bottom line.
        assert_eq!(paper_pool().total_processors(), 1889);
    }

    #[test]
    fn paper_pool_has_nine_domains() {
        let pool = paper_pool();
        assert_eq!(pool.clusters.len(), 9);
        let campus = pool
            .clusters
            .iter()
            .filter(|c| c.kind == ClusterKind::Campus)
            .count();
        assert_eq!(campus, 3);
    }

    #[test]
    fn grid5000_machines_are_biprocessors() {
        let pool = paper_pool();
        for c in &pool.clusters {
            if c.site == "Grid5000" {
                for g in &c.groups {
                    assert_eq!(g.processors % 2, 0, "{} {}", c.name, g.model);
                }
            }
        }
    }

    #[test]
    fn flatten_matches_totals() {
        let pool = paper_pool();
        let procs = pool.processors();
        assert_eq!(procs.len(), 1889);
        let ghz: f64 = procs.iter().map(|p| p.ghz).sum();
        assert!((ghz - pool.total_ghz()).abs() < 1e-9);
    }

    #[test]
    fn scaled_down_preserves_structure() {
        let pool = paper_pool().scaled_down(10);
        assert_eq!(pool.clusters.len(), 9);
        assert!(pool.total_processors() >= 189 / 10 * 9 / 9); // non-trivial
        assert!(pool.total_processors() < 1889 / 5);
        // Every group survives with at least one processor.
        for c in &pool.clusters {
            for g in &c.groups {
                assert!(g.processors >= 1);
            }
        }
    }
}
