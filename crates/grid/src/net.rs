//! Network latency model of the experimental grid (paper §5.2 and
//! Figure 6).
//!
//! Campus clusters are interconnected by Gigabit Ethernet (IUT-A by
//! 100 Mbit); campus ↔ Grid'5000 and inter-Grid'5000 traffic crosses the
//! 2.5 Gbit RENATER national backbone. The farmer ran at Lille, so a
//! worker's round-trip time depends on its cluster's site.

use crate::pool::GridPool;

/// One-way message latencies in nanoseconds.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Latency within the farmer's own campus network.
    pub campus_ns: u64,
    /// Latency for the slower 100 Mbit campus cluster (IUT-A).
    pub slow_campus_ns: u64,
    /// Latency across RENATER to a remote Grid'5000 site.
    pub wide_area_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            campus_ns: 200_000,        // 0.2 ms switched Gigabit
            slow_campus_ns: 1_000_000, // 1 ms on 100 Mbit
            wide_area_ns: 10_000_000,  // 10 ms national RTT/2
        }
    }
}

impl LatencyModel {
    /// One-way latency from a worker in `cluster` to the farmer (located
    /// on the Lille campus, like the paper's coordinator).
    pub fn to_farmer_ns(&self, pool: &GridPool, cluster: usize) -> u64 {
        let c = &pool.clusters[cluster];
        if c.site == "Lille1" {
            if c.name == "IUT-A" {
                self.slow_campus_ns
            } else {
                self.campus_ns
            }
        } else {
            self.wide_area_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::paper_pool;

    #[test]
    fn campus_faster_than_wide_area() {
        let pool = paper_pool();
        let lat = LatencyModel::default();
        let ieea = pool
            .clusters
            .iter()
            .position(|c| c.name == "IEEA-FIL")
            .unwrap();
        let iut = pool
            .clusters
            .iter()
            .position(|c| c.name == "IUT-A")
            .unwrap();
        let orsay = pool
            .clusters
            .iter()
            .position(|c| c.name == "Orsay")
            .unwrap();
        let l_ieea = lat.to_farmer_ns(&pool, ieea);
        let l_iut = lat.to_farmer_ns(&pool, iut);
        let l_orsay = lat.to_farmer_ns(&pool, orsay);
        assert!(l_ieea < l_iut, "100 Mbit campus slower than Gigabit");
        assert!(l_iut < l_orsay, "wide area slowest");
    }
}
