//! End-to-end simulator tests: runs complete, conservation holds, and
//! the qualitative claims of the paper (high worker exploitation, low
//! farmer load, sub-percent redundancy) emerge from the protocol.

use gridbnb_bigint::UBig;
use gridbnb_core::CoordinatorConfig;
use gridbnb_grid::{paper_pool, simulate, SimConfig, VolatilityModel, WorkloadModel};

fn small_sim(total_nodes: f64, seed: u64) -> (SimConfig, WorkloadModel) {
    let pool = paper_pool().scaled_down(40); // ~50 processors
    let workload = WorkloadModel::irregular(UBig::factorial(50), total_nodes, 256, 2.0, seed);
    let mut config = SimConfig::new(pool);
    config.seed = seed;
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(1_000_000).0,
        holder_timeout_ns: 10 * 60 * 1_000_000_000, // 10 min
        initial_upper_bound: Some(3680),
    };
    config.update_period_s = 30.0;
    config.sample_period_s = 600.0;
    (config, workload)
}

#[test]
fn simulation_terminates_and_covers_workload() {
    let (config, workload) = small_sim(2e8, 42);
    let report = simulate(&config, &workload);
    assert!(report.completed, "run did not terminate");
    // All node visits were performed, possibly with redundancy.
    assert!(
        report.explored_nodes >= workload.total_nodes() * 0.999,
        "explored {} < total {}",
        report.explored_nodes,
        workload.total_nodes()
    );
    assert!(report.wall_s > 0.0);
    assert!(
        report.cpu_s > report.wall_s,
        "parallelism should compress time"
    );
}

#[test]
fn pool_width_scales_bound_batch_model() {
    let (mut config, workload) = small_sim(2e8, 42);
    let scalar = simulate(&config, &workload);
    config.pool_width = 8;
    let pooled = simulate(&config, &workload);
    // The rate model is untouched by pooling; only the derived bound
    // accounting changes.
    assert!((scalar.explored_nodes - pooled.explored_nodes).abs() < 1.0);
    assert!((scalar.nodes_bounded - scalar.explored_nodes).abs() < 1.0);
    assert!((scalar.bound_batches - scalar.nodes_bounded).abs() < 1.0);
    assert!((pooled.bound_batches - pooled.nodes_bounded / 8.0).abs() < 1.0);
}

#[test]
fn worker_exploitation_high_farmer_low() {
    // The paper's headline efficiency claim: workers ~97 % busy, farmer
    // ~1.7 % busy. The shape must reproduce.
    let (config, workload) = small_sim(5e8, 7);
    let report = simulate(&config, &workload);
    assert!(report.completed);
    assert!(
        report.worker_exploitation > 0.80,
        "worker exploitation too low: {}",
        report.worker_exploitation
    );
    assert!(
        report.farmer_exploitation < 0.20,
        "farmer exploitation too high: {}",
        report.farmer_exploitation
    );
    assert!(report.worker_exploitation > 10.0 * report.farmer_exploitation);
}

#[test]
fn redundancy_stays_small() {
    let (config, workload) = small_sim(3e8, 13);
    let report = simulate(&config, &workload);
    assert!(report.completed);
    assert!(
        report.redundant_ratio < 0.10,
        "redundancy {} too high",
        report.redundant_ratio
    );
}

#[test]
fn samples_track_volatility() {
    let (mut config, workload) = small_sim(8e8, 99);
    config.volatility = VolatilityModel {
        rampup_s: 1_800.0,
        ..VolatilityModel::default()
    };
    let report = simulate(&config, &workload);
    assert!(report.samples.len() >= 3, "need a time series");
    let max_online = report.samples.iter().map(|s| s.online).max().unwrap();
    assert!(max_online > 0);
    assert!(report.max_workers >= max_online);
    // Exploited never exceeds online.
    for s in &report.samples {
        assert!(s.exploited <= s.online);
    }
}

#[test]
fn sharded_sim_completes_with_stealing() {
    let (mut config, workload) = small_sim(2e8, 42);
    config.shards = 4;
    let report = simulate(&config, &workload);
    assert!(report.completed, "sharded run did not terminate");
    assert!(
        report.explored_nodes >= workload.total_nodes() * 0.999,
        "sharded run lost work: {} < {}",
        report.explored_nodes,
        workload.total_nodes()
    );
    // Stealing bookkeeping is symmetric across the shard set.
    assert_eq!(
        report.coordinator_stats.steals_donated,
        report.coordinator_stats.steals_adopted
    );
    assert_eq!(report.coordinator_stats.steals_donated, report.steals);
    // The efficiency shape survives sharding.
    assert!(
        report.worker_exploitation > 0.80,
        "worker exploitation too low: {}",
        report.worker_exploitation
    );
}

#[test]
fn sharded_sim_is_deterministic_given_seed() {
    let (mut config, workload) = small_sim(1e8, 5);
    config.shards = 3;
    let a = simulate(&config, &workload);
    let b = simulate(&config, &workload);
    assert_eq!(a.work_allocations, b.work_allocations);
    assert_eq!(a.steals, b.steals);
    assert!((a.wall_s - b.wall_s).abs() < 1e-9);
    assert!((a.explored_nodes - b.explored_nodes).abs() < 1.0);
}

#[test]
fn batched_contacts_strictly_reduce_contacts() {
    // Same pool, same workload, same seed: delivering checkpoints in
    // batches of 4 must strictly cut the number of coordinator contacts
    // while the run still terminates and covers the whole workload.
    let (config, workload) = small_sim(2e8, 42);
    let per_request = simulate(&config, &workload);
    let mut batched_config = config;
    batched_config.contact_batch = 4;
    let batched = simulate(&batched_config, &workload);
    assert!(per_request.completed && batched.completed);
    assert!(
        batched.explored_nodes >= workload.total_nodes() * 0.999,
        "batched run lost work"
    );
    assert!(
        batched.contacts < per_request.contacts,
        "batching must reduce contacts: {} vs {}",
        batched.contacts,
        per_request.contacts
    );
    // The per-op update load the farmer processes stays in the paper's
    // regime (each batched contact still carries its period's updates),
    // so batching amortizes contacts without hiding protocol work.
    assert!(batched.checkpoint_ops > 0);
    assert!(
        batched.contacts < batched.checkpoint_ops + batched.work_allocations,
        "contacts should undercut per-op traffic: {} vs {}",
        batched.contacts,
        batched.checkpoint_ops + batched.work_allocations
    );
}

#[test]
fn gateway_mode_strictly_reduces_contacts_at_w32_s4() {
    // Exactly 32 workers over 4 shards (W ≫ S): per-worker batching
    // (`contact_batch` alone) already amortizes one worker's snapshots,
    // so any further contact reduction can only come from merging
    // *different* workers' traffic — which is precisely what the
    // gateway's per-shard queues add. Same pool, workload and seed; the
    // sim is deterministic, so the comparison is exact.
    use gridbnb_grid::{Cluster, ClusterKind, CpuGroup, GridPool};
    let pool = GridPool {
        clusters: (0..4)
            .map(|k| Cluster {
                name: "synthetic",
                site: "test",
                kind: if k % 2 == 0 {
                    ClusterKind::Campus
                } else {
                    ClusterKind::Dedicated
                },
                groups: vec![CpuGroup {
                    model: "P4",
                    ghz: 1.5 + 0.5 * k as f64,
                    processors: 8,
                }],
            })
            .collect(),
    };
    assert_eq!(pool.total_processors(), 32);
    let workload = WorkloadModel::irregular(UBig::factorial(50), 2e8, 256, 2.0, 42);
    let mut config = SimConfig::new(pool);
    config.seed = 42;
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(1_000_000).0,
        holder_timeout_ns: 10 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    config.update_period_s = 30.0;
    config.sample_period_s = 600.0;
    config.shards = 4;
    config.contact_batch = 4;
    let batched_only = simulate(&config, &workload);
    let mut gateway_config = config.clone();
    gateway_config.gateway_fan_in = 8;
    let gatewayed = simulate(&gateway_config, &workload);
    assert!(batched_only.completed && gatewayed.completed);
    assert!(
        gatewayed.explored_nodes >= workload.total_nodes() * 0.999,
        "gateway run lost work: {} < {}",
        gatewayed.explored_nodes,
        workload.total_nodes()
    );
    assert!(
        gatewayed.contacts < batched_only.contacts,
        "cross-worker aggregation must strictly reduce contacts: {} vs {}",
        gatewayed.contacts,
        batched_only.contacts
    );
    // Identical proof: the cutoff the run ends on is unchanged by how
    // contacts were aggregated.
    assert_eq!(gatewayed.best_cost, batched_only.best_cost);
    // The farmer still processed the paper-rate per-op update load —
    // aggregation amortizes lock traffic, it does not hide work.
    assert!(gatewayed.checkpoint_ops > 0);
    assert!(gatewayed.contacts < gatewayed.checkpoint_ops + gatewayed.work_allocations);
}

#[test]
fn gateway_sim_is_deterministic_given_seed() {
    let (mut config, workload) = small_sim(1e8, 5);
    config.shards = 3;
    config.contact_batch = 2;
    config.gateway_fan_in = 6;
    let a = simulate(&config, &workload);
    let b = simulate(&config, &workload);
    assert_eq!(a.work_allocations, b.work_allocations);
    assert_eq!(a.contacts, b.contacts);
    assert_eq!(a.steals, b.steals);
    assert!((a.wall_s - b.wall_s).abs() < 1e-9);
    assert!((a.explored_nodes - b.explored_nodes).abs() < 1.0);
}

#[test]
fn batched_sharded_sim_completes() {
    let (mut config, workload) = small_sim(2e8, 42);
    config.shards = 4;
    config.contact_batch = 8;
    let report = simulate(&config, &workload);
    assert!(report.completed, "batched sharded run did not terminate");
    assert!(
        report.explored_nodes >= workload.total_nodes() * 0.999,
        "batched sharded run lost work"
    );
    assert_eq!(
        report.coordinator_stats.steals_donated,
        report.coordinator_stats.steals_adopted
    );
    assert!(report.contacts < report.coordinator_stats.updates + report.work_allocations);
}

#[test]
#[should_panic(expected = "invalid sim coordinator config")]
fn invalid_sim_config_fails_fast() {
    let (mut config, workload) = small_sim(1e8, 5);
    config.coordinator.duplication_threshold = UBig::zero();
    let _ = simulate(&config, &workload);
}

#[test]
fn deterministic_given_seed() {
    let (config, workload) = small_sim(1e8, 5);
    let a = simulate(&config, &workload);
    let b = simulate(&config, &workload);
    assert_eq!(a.work_allocations, b.work_allocations);
    assert_eq!(a.checkpoint_ops, b.checkpoint_ops);
    assert!((a.wall_s - b.wall_s).abs() < 1e-9);
    assert!((a.explored_nodes - b.explored_nodes).abs() < 1.0);
}

#[test]
fn more_workers_finish_faster() {
    let workload = WorkloadModel::uniform(UBig::factorial(50), 4e8);
    let mut small = SimConfig::new(paper_pool().scaled_down(100)); // ~19 procs
    let mut large = SimConfig::new(paper_pool().scaled_down(20)); // ~95 procs
    for c in [&mut small, &mut large] {
        c.coordinator.duplication_threshold = UBig::factorial(50).div_rem_u64(1_000_000).0;
        c.coordinator.initial_upper_bound = Some(3680);
        c.volatility = VolatilityModel {
            participation: 1.0,
            rampup_s: 60.0,
            ..VolatilityModel::default()
        };
    }
    let r_small = simulate(&small, &workload);
    let r_large = simulate(&large, &workload);
    assert!(r_small.completed && r_large.completed);
    assert!(
        r_large.wall_s < r_small.wall_s,
        "more processors should shorten the run: {} vs {}",
        r_large.wall_s,
        r_small.wall_s
    );
}

#[test]
fn work_allocations_scale_with_churn() {
    let workload = WorkloadModel::uniform(UBig::factorial(50), 4e8);
    let mut stable = SimConfig::new(paper_pool().scaled_down(50));
    stable.coordinator.duplication_threshold = UBig::factorial(50).div_rem_u64(1_000_000).0;
    let mut churny = stable.clone();
    churny.volatility = VolatilityModel {
        campus: gridbnb_grid::ChurnProfile {
            mean_up_s: 1_800.0,
            mean_down_s: 1_800.0,
            diurnal_amplitude: 0.5,
        },
        dedicated: gridbnb_grid::ChurnProfile {
            mean_up_s: 3_600.0,
            mean_down_s: 3_600.0,
            diurnal_amplitude: 0.2,
        },
        rampup_s: 600.0,
        participation: 1.0,
    };
    let r_stable = simulate(&stable, &workload);
    let r_churny = simulate(&churny, &workload);
    assert!(r_stable.completed && r_churny.completed);
    assert!(
        r_churny.work_allocations > r_stable.work_allocations,
        "churn should force more allocations: {} vs {}",
        r_churny.work_allocations,
        r_stable.work_allocations
    );
}
