//! Property tests for the interval coding: fold/unfold round trips,
//! minimality, exact coverage, and interval-set algebra, on random tree
//! shapes and random intervals (including shapes whose leaf counts exceed
//! u128).

use gridbnb_bigint::UBig;
use gridbnb_coding::{fold, unfold, unfold_direct, Interval, IntervalSet, NodePath, TreeShape};
use proptest::prelude::*;

/// Random regular tree with at most ~2000 leaves (kept enumerable).
fn small_shape() -> impl Strategy<Value = TreeShape> {
    proptest::collection::vec(1u64..5, 1..6).prop_map(TreeShape::from_arities)
}

/// Random big tree: permutation trees up to 40 elements (40! >> u128).
fn big_shape() -> impl Strategy<Value = TreeShape> {
    (2usize..40).prop_map(TreeShape::permutation)
}

/// A random sub-interval of the shape's root range, via two fractions in
/// per-mille.
fn sub_interval(shape: &TreeShape, lo_ppm: u64, hi_ppm: u64) -> Interval {
    let total = shape.total_leaves();
    let a = total.mul_div_floor(lo_ppm.min(hi_ppm), 1_000_000);
    let b = total.mul_div_floor(lo_ppm.max(hi_ppm), 1_000_000);
    Interval::new(a, b)
}

proptest! {
    #[test]
    fn fold_unfold_round_trip_small(shape in small_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let interval = sub_interval(&shape, x, y);
        prop_assume!(!interval.is_empty());
        let nodes = unfold(&shape, &interval);
        prop_assert_eq!(fold(&shape, &nodes).unwrap(), interval);
    }

    #[test]
    fn fold_unfold_round_trip_big(shape in big_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let interval = sub_interval(&shape, x, y);
        prop_assume!(!interval.is_empty());
        let nodes = unfold_direct(&shape, &interval);
        prop_assert_eq!(fold(&shape, &nodes).unwrap(), interval);
    }

    #[test]
    fn unfold_impls_agree(shape in small_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let interval = sub_interval(&shape, x, y);
        prop_assert_eq!(unfold(&shape, &interval), unfold_direct(&shape, &interval));
    }

    #[test]
    fn unfold_impls_agree_big(shape in big_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let interval = sub_interval(&shape, x, y);
        prop_assert_eq!(unfold(&shape, &interval), unfold_direct(&shape, &interval));
    }

    #[test]
    fn unfold_is_minimal(shape in small_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        // Equation 11: each emitted node is contained but its father is not.
        let interval = sub_interval(&shape, x, y);
        for node in unfold(&shape, &interval) {
            prop_assert!(interval.contains_interval(&node.range(&shape)));
            if let Some(parent) = node.parent() {
                prop_assert!(!interval.contains_interval(&parent.range(&shape)));
            }
        }
    }

    #[test]
    fn unfold_tiles_exactly(shape in small_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let interval = sub_interval(&shape, x, y);
        prop_assume!(!interval.is_empty());
        let nodes = unfold(&shape, &interval);
        // Consecutive ranges tile with no gaps or overlaps (equation 9),
        // starting at begin and ending at end.
        prop_assert!(!nodes.is_empty());
        let mut cursor = interval.begin().clone();
        for node in &nodes {
            let range = node.range(&shape);
            prop_assert_eq!(range.begin(), &cursor);
            cursor = range.end().clone();
        }
        prop_assert_eq!(&cursor, interval.end());
    }

    #[test]
    fn unfold_size_bounded(shape in big_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000) {
        // ≤ 2 boundary chains of ≤ (arity-1) emissions per depth.
        let interval = sub_interval(&shape, x, y);
        let nodes = unfold_direct(&shape, &interval);
        let p = shape.leaf_depth();
        let max_arity = (0..p).map(|d| shape.arity_at(d)).max().unwrap_or(1) as usize;
        prop_assert!(nodes.len() <= 2 * p * max_arity + 1);
    }

    #[test]
    fn leaf_number_bijection(shape in small_shape(), k in 0u64..2000) {
        let total = shape.total_leaves().to_u64().unwrap();
        let n = k % total;
        let leaf = NodePath::leaf_with_number(&shape, &UBig::from(n));
        prop_assert_eq!(leaf.number(&shape).to_u64(), Some(n));
        prop_assert!(leaf.is_leaf(&shape));
    }

    #[test]
    fn number_is_dfs_leaf_prefix_count(shape in small_shape(), k in 0u64..2000) {
        // number(leaf) equals its 0-based DFS visit position among leaves.
        let total = shape.total_leaves().to_u64().unwrap();
        let n = k % total;
        let leaf = NodePath::leaf_with_number(&shape, &UBig::from(n));
        // Count leaves lexicographically smaller than this leaf's rank word.
        let mut count = UBig::zero();
        for (depth, &rank) in leaf.ranks().iter().enumerate() {
            count += &shape.weight_at(depth + 1).mul_u64(rank);
        }
        prop_assert_eq!(count.to_u64(), Some(n));
    }

    #[test]
    fn intersect_commutes_and_shrinks(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000, d in 0u64..1000) {
        let i1 = Interval::new(UBig::from(a.min(b)), UBig::from(a.max(b)));
        let i2 = Interval::new(UBig::from(c.min(d)), UBig::from(c.max(d)));
        let m = i1.intersect(&i2);
        prop_assert_eq!(m.clone(), i2.intersect(&i1));
        prop_assert!(m.length() <= i1.length());
        prop_assert!(m.length() <= i2.length());
        if !m.is_empty() {
            prop_assert!(i1.contains_interval(&m));
            prop_assert!(i2.contains_interval(&m));
        }
    }

    #[test]
    fn split_reassembles(a in 0u64..1000, b in 0u64..1000, c in 0u64..2000) {
        let interval = Interval::new(UBig::from(a.min(b)), UBig::from(a.max(b)));
        let (left, right) = interval.split_at(&UBig::from(c));
        prop_assert_eq!(&left.length() + &right.length(), interval.length());
        if !left.is_empty() && !right.is_empty() {
            prop_assert_eq!(left.end(), right.begin());
        }
    }

    #[test]
    fn interval_set_ops_preserve_invariants(ops in proptest::collection::vec((any::<bool>(), 0u64..500, 0u64..500), 0..40)) {
        let mut set = IntervalSet::new();
        for (is_insert, x, y) in ops {
            let iv = Interval::new(UBig::from(x.min(y)), UBig::from(x.max(y)));
            if is_insert {
                set.insert(iv);
            } else {
                set.subtract(&iv);
            }
            prop_assert!(set.check_invariants(), "invariant broken: {}", set);
        }
    }

    #[test]
    fn interval_set_matches_bitset_reference(ops in proptest::collection::vec((any::<bool>(), 0u64..256, 0u64..256), 0..30)) {
        let mut set = IntervalSet::new();
        let mut bits = [false; 256];
        for (is_insert, x, y) in ops {
            let (lo, hi) = (x.min(y), x.max(y));
            let iv = Interval::new(UBig::from(lo), UBig::from(hi));
            if is_insert {
                set.insert(iv);
                for bit in bits.iter_mut().take(hi as usize).skip(lo as usize) {
                    *bit = true;
                }
            } else {
                set.subtract(&iv);
                for bit in bits.iter_mut().take(hi as usize).skip(lo as usize) {
                    *bit = false;
                }
            }
        }
        for (i, &expect) in bits.iter().enumerate() {
            prop_assert_eq!(set.contains(&UBig::from(i as u64)), expect, "at {}", i);
        }
    }

    #[test]
    fn fold_rejects_shuffled_frontiers(shape in small_shape(), x in 0u64..1_000_000, y in 0u64..1_000_000, swap in any::<proptest::sample::Index>()) {
        let interval = sub_interval(&shape, x, y);
        let mut nodes = unfold(&shape, &interval);
        prop_assume!(nodes.len() >= 2);
        let i = swap.index(nodes.len() - 1);
        nodes.swap(i, i + 1);
        prop_assert!(fold(&shape, &nodes).is_err());
    }
}
