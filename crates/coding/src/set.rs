//! A set of disjoint intervals — interval algebra used by tests and by
//! the coordinator's invariant checks.

use crate::Interval;
use gridbnb_bigint::UBig;
use std::fmt;

/// A canonical set of pairwise-disjoint, non-adjacent, non-empty
/// intervals kept sorted by lower endpoint.
///
/// This is the pure-algebra cousin of the coordinator's `INTERVALS`
/// (which additionally tracks holders and powers): inserting merges
/// overlapping or touching intervals, subtracting splits them. The
/// coordinator's correctness tests use it to assert *work conservation*:
/// explored ∪ remaining must always equal the root range.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Sorted, disjoint, non-adjacent, non-empty.
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding one interval (if non-empty).
    pub fn from_interval(interval: Interval) -> Self {
        let mut s = Self::new();
        s.insert(interval);
        s
    }

    /// Number of maximal intervals (the paper's "cardinality of
    /// INTERVALS").
    pub fn cardinality(&self) -> usize {
        self.intervals.len()
    }

    /// `true` iff no numbers are covered.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Sum of the lengths (the paper's "size of INTERVALS": the count of
    /// not-yet-explored solutions).
    pub fn size(&self) -> UBig {
        let mut total = UBig::zero();
        for i in &self.intervals {
            total += &i.length();
        }
        total
    }

    /// The intervals in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.iter()
    }

    /// `true` iff `x` is covered.
    pub fn contains(&self, x: &UBig) -> bool {
        // Binary search on begin; candidate is the predecessor.
        let idx = self.intervals.partition_point(|i| *i.begin() <= *x);
        idx > 0 && self.intervals[idx - 1].contains(x)
    }

    /// `true` iff every number of `interval` is covered.
    pub fn covers(&self, interval: &Interval) -> bool {
        if interval.is_empty() {
            return true;
        }
        let idx = self
            .intervals
            .partition_point(|i| *i.begin() <= *interval.begin());
        idx > 0 && self.intervals[idx - 1].contains_interval(interval)
    }

    /// Inserts an interval, merging with any overlapping or adjacent
    /// members. Empty input is a no-op.
    pub fn insert(&mut self, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        let mut begin = interval.begin().clone();
        let mut end = interval.end().clone();
        // Find the range of members that overlap or touch [begin, end).
        let lo = self.intervals.partition_point(|i| *i.end() < begin);
        let hi = self.intervals.partition_point(|i| *i.begin() <= end);
        for merged in &self.intervals[lo..hi] {
            if *merged.begin() < begin {
                begin = merged.begin().clone();
            }
            if *merged.end() > end {
                end = merged.end().clone();
            }
        }
        self.intervals.splice(lo..hi, [Interval::new(begin, end)]);
    }

    /// Removes every number of `interval` from the set, splitting members
    /// that straddle its endpoints.
    pub fn subtract(&mut self, interval: &Interval) {
        if interval.is_empty() || self.intervals.is_empty() {
            return;
        }
        let lo = self
            .intervals
            .partition_point(|i| *i.end() <= *interval.begin());
        let hi = self
            .intervals
            .partition_point(|i| *i.begin() < *interval.end());
        if lo >= hi {
            return;
        }
        let mut replacement: Vec<Interval> = Vec::with_capacity(2);
        let left = Interval::new(self.intervals[lo].begin().clone(), interval.begin().clone());
        if !left.is_empty() {
            replacement.push(left);
        }
        let right = Interval::new(interval.end().clone(), self.intervals[hi - 1].end().clone());
        if !right.is_empty() {
            replacement.push(right);
        }
        self.intervals.splice(lo..hi, replacement);
    }

    /// Merges another set into this one.
    pub fn union_with(&mut self, other: &IntervalSet) {
        for i in &other.intervals {
            self.insert(i.clone());
        }
    }

    /// Checks the structural invariant (sorted, disjoint, non-adjacent,
    /// non-empty). Used by property tests after random op sequences.
    pub fn check_invariants(&self) -> bool {
        self.intervals.iter().all(|i| !i.is_empty())
            && self
                .intervals
                .windows(2)
                .all(|w| *w[0].end() < *w[1].begin())
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.intervals.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        let mut s = IntervalSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    #[test]
    fn insert_disjoint_keeps_both() {
        let set: IntervalSet = [iv(0, 5), iv(10, 15)].into_iter().collect();
        assert_eq!(set.cardinality(), 2);
        assert_eq!(set.size().to_u64(), Some(10));
        assert!(set.check_invariants());
    }

    #[test]
    fn insert_overlapping_merges() {
        let set: IntervalSet = [iv(0, 5), iv(3, 8)].into_iter().collect();
        assert_eq!(set.cardinality(), 1);
        assert_eq!(set.size().to_u64(), Some(8));
    }

    #[test]
    fn insert_adjacent_merges() {
        let set: IntervalSet = [iv(0, 5), iv(5, 8)].into_iter().collect();
        assert_eq!(set.cardinality(), 1);
        assert!(set.covers(&iv(0, 8)));
    }

    #[test]
    fn insert_bridging_merges_three() {
        let mut set: IntervalSet = [iv(0, 2), iv(4, 6), iv(8, 10)].into_iter().collect();
        set.insert(iv(1, 9));
        assert_eq!(set.cardinality(), 1);
        assert_eq!(set.size().to_u64(), Some(10));
        assert!(set.check_invariants());
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut set = IntervalSet::new();
        set.insert(iv(5, 5));
        assert!(set.is_empty());
    }

    #[test]
    fn contains_point_lookup() {
        let set: IntervalSet = [iv(0, 5), iv(10, 15)].into_iter().collect();
        assert!(set.contains(&UBig::from(0u64)));
        assert!(set.contains(&UBig::from(4u64)));
        assert!(!set.contains(&UBig::from(5u64)));
        assert!(!set.contains(&UBig::from(9u64)));
        assert!(set.contains(&UBig::from(14u64)));
        assert!(!set.contains(&UBig::from(15u64)));
    }

    #[test]
    fn covers_needs_single_member() {
        let set: IntervalSet = [iv(0, 5), iv(5, 10)].into_iter().collect(); // merges to [0,10)
        assert!(set.covers(&iv(2, 8)));
        let gappy: IntervalSet = [iv(0, 5), iv(6, 10)].into_iter().collect();
        assert!(!gappy.covers(&iv(2, 8)));
        assert!(gappy.covers(&iv(7, 7))); // empty always covered
    }

    #[test]
    fn subtract_middle_splits() {
        let mut set = IntervalSet::from_interval(iv(0, 10));
        set.subtract(&iv(3, 7));
        assert_eq!(set.cardinality(), 2);
        assert!(set.covers(&iv(0, 3)));
        assert!(set.covers(&iv(7, 10)));
        assert!(!set.contains(&UBig::from(5u64)));
        assert!(set.check_invariants());
    }

    #[test]
    fn subtract_spanning_removes_all() {
        let mut set: IntervalSet = [iv(2, 4), iv(6, 8)].into_iter().collect();
        set.subtract(&iv(0, 10));
        assert!(set.is_empty());
    }

    #[test]
    fn subtract_edges_trims() {
        let mut set = IntervalSet::from_interval(iv(0, 10));
        set.subtract(&iv(0, 3));
        set.subtract(&iv(8, 10));
        assert_eq!(set.cardinality(), 1);
        assert_eq!(set.size().to_u64(), Some(5));
        assert!(set.covers(&iv(3, 8)));
    }

    #[test]
    fn subtract_disjoint_is_noop() {
        let mut set = IntervalSet::from_interval(iv(5, 10));
        set.subtract(&iv(0, 5));
        set.subtract(&iv(10, 20));
        assert_eq!(set, IntervalSet::from_interval(iv(5, 10)));
    }

    #[test]
    fn subtract_across_multiple_members() {
        let mut set: IntervalSet = [iv(0, 4), iv(6, 10), iv(12, 16)].into_iter().collect();
        set.subtract(&iv(2, 14));
        assert_eq!(set.cardinality(), 2);
        assert!(set.covers(&iv(0, 2)));
        assert!(set.covers(&iv(14, 16)));
        assert!(set.check_invariants());
    }

    #[test]
    fn union_with_combines() {
        let mut a: IntervalSet = [iv(0, 3)].into_iter().collect();
        let b: IntervalSet = [iv(3, 6), iv(10, 12)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.size().to_u64(), Some(8));
    }

    #[test]
    fn work_conservation_scenario() {
        // Simulates the coordinator invariant: explored + remaining = root.
        let root = iv(0, 120);
        let mut remaining = IntervalSet::from_interval(root.clone());
        let mut explored = IntervalSet::new();
        for (a, b) in [(0, 13), (50, 80), (13, 50), (110, 120), (80, 110)] {
            let chunk = iv(a, b);
            remaining.subtract(&chunk);
            explored.insert(chunk);
            let mut all = remaining.clone();
            all.union_with(&explored);
            assert!(all.covers(&root), "lost work after exploring [{a},{b})");
        }
        assert!(remaining.is_empty());
    }

    #[test]
    fn display_formats() {
        let set: IntervalSet = [iv(0, 3), iv(5, 9)].into_iter().collect();
        assert_eq!(set.to_string(), "{[0, 3), [5, 9)}");
    }
}
