//! The unfold operator (paper §3.5): interval → minimal active node list.

use crate::{Interval, NodePath, TreeShape};
use gridbnb_bigint::UBig;

/// Unfolds an interval into the unique minimal active list covering it,
/// following the paper's formulation (equations 11–13): a branch and
/// bound over the tree itself in which a node is *eliminated* when its
/// range is contained in `[A, B)` (it joins the output) or disjoint from
/// it (it is dropped), and *branched* otherwise.
///
/// The output is in DFS order, pairwise disjoint, and its ranges
/// partition `interval ∩ root_range` exactly. The paper bounds the number
/// of branchings by the tree depth `P` per boundary, so the cost is
/// `O(P · max_arity)`.
pub fn unfold(shape: &TreeShape, interval: &Interval) -> Vec<NodePath> {
    let clamped = interval.intersect(&shape.root_range());
    let mut out = Vec::new();
    if clamped.is_empty() {
        return out;
    }
    eliminate_or_branch(shape, &NodePath::root(), &clamped, &mut out);
    out
}

/// Equation 12: eliminate when contained (emit) or disjoint (drop),
/// otherwise branch into all children in rank order.
fn eliminate_or_branch(
    shape: &TreeShape,
    node: &NodePath,
    target: &Interval,
    out: &mut Vec<NodePath>,
) {
    let range = node.range(shape);
    if target.contains_interval(&range) {
        out.push(node.clone());
        return;
    }
    if !range.overlaps(target) {
        return;
    }
    debug_assert!(
        !node.is_leaf(shape),
        "a leaf range is a singleton: it is contained or disjoint, never partial"
    );
    for rank in 0..shape.arity_at(node.depth()) {
        eliminate_or_branch(shape, &node.child(shape, rank), target, out);
    }
}

/// Direct unfold: computes the same minimal cover by mixed-radix
/// boundary arithmetic instead of scanning every child of every branched
/// node. Children strictly inside the interval are located by a single
/// division, so the two boundary descents dominate the cost.
///
/// Property-tested equal to [`unfold`]; this is the variant the runtime
/// uses to restore checkpoints, and the `coding` benchmark compares the
/// two.
pub fn unfold_direct(shape: &TreeShape, interval: &Interval) -> Vec<NodePath> {
    let clamped = interval.intersect(&shape.root_range());
    let mut out = Vec::new();
    if clamped.is_empty() {
        return out;
    }
    cover(shape, &NodePath::root(), &UBig::zero(), &clamped, &mut out);
    out
}

/// Emits the canonical cover of `target` restricted to the subtree at
/// `node`, whose range begins at `lo`. Invariant: `target` overlaps the
/// node's range.
fn cover(
    shape: &TreeShape,
    node: &NodePath,
    lo: &UBig,
    target: &Interval,
    out: &mut Vec<NodePath>,
) {
    let depth = node.depth();
    let hi = lo + shape.weight_at(depth);
    if *target.begin() <= *lo && hi <= *target.end() {
        out.push(node.clone());
        return;
    }
    debug_assert!(depth < shape.leaf_depth());
    let child_weight = shape.weight_at(depth + 1);
    // First child whose range ends after target.begin ...
    let first = if *target.begin() <= *lo {
        0
    } else {
        let offset = target.begin() - lo;
        let (q, _r) = offset.div_rem(child_weight);
        q.to_u64().expect("child index fits the arity")
    };
    // ... and last child whose range starts before target.end.
    let arity = shape.arity_at(depth);
    let last = if hi <= *target.end() {
        arity - 1
    } else {
        // target.end > lo because the ranges overlap.
        let offset = &(target.end() - lo) - &UBig::one();
        let (q, _r) = offset.div_rem(child_weight);
        q.to_u64()
            .expect("child index fits the arity")
            .min(arity - 1)
    };
    let mut child_lo = lo + &child_weight.mul_u64(first);
    for rank in first..=last {
        let child = node.child(shape, rank);
        let child_hi = &child_lo + child_weight;
        if *target.begin() <= child_lo && child_hi <= *target.end() {
            // Strictly inside: emit without descending.
            out.push(child);
        } else {
            cover(shape, &child, &child_lo, target, out);
        }
        child_lo = child_hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold;

    /// Brute-force reference: all nodes satisfying equation 11 directly,
    /// by enumerating the entire tree.
    fn unfold_brute(shape: &TreeShape, interval: &Interval) -> Vec<NodePath> {
        let mut out = Vec::new();
        let mut stack = vec![NodePath::root()];
        while let Some(node) = stack.pop() {
            let contained =
                interval.contains_interval(&node.range(shape)) && !node.range(shape).is_empty();
            let parent_contained = node
                .parent()
                .is_some_and(|p| interval.contains_interval(&p.range(shape)));
            if contained && !parent_contained {
                out.push(node.clone());
            }
            if !node.is_leaf(shape) {
                for r in (0..shape.arity_at(node.depth())).rev() {
                    stack.push(node.child(shape, r));
                }
            }
        }
        // Stack order above yields DFS order already; sort defensively by number.
        out.sort_by_key(|n| n.number(shape).to_u128().unwrap());
        out
    }

    fn exhaustive_check(shape: &TreeShape) {
        let total = shape.total_leaves().to_u64().expect("small tree");
        for a in 0..=total {
            for b in a..=total {
                let interval = shape.interval(a, b);
                let got = unfold(shape, &interval);
                let direct = unfold_direct(shape, &interval);
                let brute = unfold_brute(shape, &interval);
                assert_eq!(got, brute, "unfold mismatch on [{a},{b}) of {shape:?}");
                assert_eq!(direct, brute, "direct mismatch on [{a},{b}) of {shape:?}");
                if a < b {
                    // fold is a left inverse of unfold.
                    assert_eq!(fold(shape, &got).unwrap(), interval);
                }
            }
        }
    }

    #[test]
    fn exhaustive_permutation_4() {
        exhaustive_check(&TreeShape::permutation(4));
    }

    #[test]
    fn exhaustive_binary_4() {
        exhaustive_check(&TreeShape::binary(4));
    }

    #[test]
    fn exhaustive_mixed_radix() {
        exhaustive_check(&TreeShape::from_arities(vec![2, 3, 2]));
        exhaustive_check(&TreeShape::from_arities(vec![5, 1, 2]));
    }

    #[test]
    fn unfold_full_range_is_root() {
        let shape = TreeShape::permutation(6);
        let nodes = unfold(&shape, &shape.root_range());
        assert_eq!(nodes, vec![NodePath::root()]);
    }

    #[test]
    fn unfold_empty_interval_is_empty() {
        let shape = TreeShape::permutation(4);
        assert!(unfold(&shape, &Interval::empty()).is_empty());
        assert!(unfold(&shape, &shape.interval(5u64, 5u64)).is_empty());
        assert!(unfold_direct(&shape, &shape.interval(5u64, 5u64)).is_empty());
    }

    #[test]
    fn unfold_clamps_to_root_range() {
        let shape = TreeShape::permutation(3);
        let oversized = Interval::new(UBig::zero(), UBig::from(1000u64));
        assert_eq!(unfold(&shape, &oversized), vec![NodePath::root()]);
        assert_eq!(unfold_direct(&shape, &oversized), vec![NodePath::root()]);
    }

    #[test]
    fn unfold_singleton_interval() {
        // In a permutation tree the depth P−1 nodes have arity 1 and
        // weight 1, so the *minimal* cover of a singleton interval is the
        // shallowest node with a unit range — an ancestor of the leaf,
        // not the leaf itself (equation 11).
        let shape = TreeShape::permutation(4);
        let nodes = unfold(&shape, &shape.interval(13u64, 14u64));
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].number(&shape).to_u64(), Some(13));
        assert_eq!(nodes[0].range(&shape).length().to_u64(), Some(1));
        // The unique leaf numbered 13 lies below the returned node.
        let leaf = NodePath::leaf_with_number(&shape, &UBig::from(13u64));
        assert_eq!(&leaf.ranks()[..nodes[0].depth()], nodes[0].ranks());
    }

    #[test]
    fn unfold_output_is_dfs_ordered_and_disjoint() {
        let shape = TreeShape::permutation(5);
        let interval = shape.interval(17u64, 101u64);
        let nodes = unfold(&shape, &interval);
        for pair in nodes.windows(2) {
            let r0 = pair[0].range(&shape);
            let r1 = pair[1].range(&shape);
            assert_eq!(r0.end(), r1.begin(), "must tile contiguously");
        }
        assert_eq!(fold(&shape, &nodes).unwrap(), interval);
    }

    #[test]
    fn unfold_minimality_no_two_siblings_cover_parent() {
        // If all children of a node appear, the node itself should have
        // appeared instead: check on many intervals of a mid-size tree.
        let shape = TreeShape::permutation(5);
        let total = shape.total_leaves().to_u64().unwrap();
        for a in (0..total).step_by(7) {
            for b in ((a + 1)..=total).step_by(11) {
                let nodes = unfold(&shape, &shape.interval(a, b));
                for w in nodes.windows(2) {
                    if let (Some(p0), Some(p1)) = (w[0].parent(), w[1].parent()) {
                        if p0 == p1 {
                            // siblings adjacent in the list: fine unless the
                            // whole sibling set is present consecutively
                            continue;
                        }
                    }
                }
                // Direct minimality witness: every node's parent range must
                // not be contained in the interval (equation 11).
                let interval = shape.interval(a, b);
                for n in &nodes {
                    if let Some(p) = n.parent() {
                        assert!(
                            !interval.contains_interval(&p.range(&shape)),
                            "parent of {n} is also contained: not minimal"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unfold_direct_at_ta056_scale() {
        // Correctness at 50! scale: slice a huge interval out of the
        // middle and verify fold round-trips it.
        let shape = TreeShape::permutation(50);
        let third = shape.total_leaves().div_rem_u64(3).0;
        let interval = Interval::new(third.clone(), third.mul_u64(2));
        let nodes = unfold_direct(&shape, &interval);
        assert!(!nodes.is_empty());
        // ≤ (arity−1) · depth nodes per boundary.
        assert!(nodes.len() <= 2 * 50 * 50);
        assert_eq!(fold(&shape, &nodes).unwrap(), interval);
        let reference = unfold(&shape, &interval);
        assert_eq!(nodes, reference);
    }

    #[test]
    fn unfold_cost_is_bounded_by_depth_times_arity() {
        let shape = TreeShape::permutation(20);
        let interval = Interval::new(
            UBig::from(12345u64),
            shape.total_leaves().saturating_sub(&UBig::from(6789u64)),
        );
        let nodes = unfold_direct(&shape, &interval);
        assert!(nodes.len() <= 20 * 20, "cover of {} nodes", nodes.len());
    }
}
