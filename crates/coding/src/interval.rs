//! Half-open intervals `[begin, end)` of node numbers.

use gridbnb_bigint::UBig;
use std::fmt;

/// A half-open interval `[begin, end)` of node numbers — the wire and
/// checkpoint representation of a branch-and-bound work unit (paper §3).
///
/// An interval with `begin >= end` is **empty**; the coordinator drops
/// empty intervals from `INTERVALS` on every update (paper §4.3), which is
/// what makes termination detection implicit.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    begin: UBig,
    end: UBig,
}

impl Interval {
    /// Builds `[begin, end)`. Empty intervals (`begin >= end`) are legal;
    /// they normalize comparisons but contain nothing.
    pub fn new(begin: UBig, end: UBig) -> Self {
        Interval { begin, end }
    }

    /// The canonical empty interval `[0, 0)`.
    pub fn empty() -> Self {
        Interval {
            begin: UBig::zero(),
            end: UBig::zero(),
        }
    }

    /// Inclusive lower endpoint.
    #[inline]
    pub fn begin(&self) -> &UBig {
        &self.begin
    }

    /// Exclusive upper endpoint.
    #[inline]
    pub fn end(&self) -> &UBig {
        &self.end
    }

    /// `true` iff the interval contains no number (`begin >= end`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin >= self.end
    }

    /// Number of node numbers contained: `max(end − begin, 0)`.
    pub fn length(&self) -> UBig {
        self.end.saturating_sub(&self.begin)
    }

    /// `true` iff `x ∈ [begin, end)`.
    pub fn contains(&self, x: &UBig) -> bool {
        *x >= self.begin && *x < self.end
    }

    /// `true` iff `other ⊆ self`. The empty interval is a subset of
    /// everything.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (other.begin >= self.begin && other.end <= self.end)
    }

    /// `true` iff the two intervals share at least one number.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The paper's intersection operator (equation 14):
    /// `[A,B) ∩ [A',B') = [max(A,A'), min(B,B'))`.
    ///
    /// Workers apply this against the coordinator's copy on every contact
    /// so that concurrent exploration (begin advancing) and load balancing
    /// (end retreating) compose without locks.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            begin: self.begin.clone().max(other.begin.clone()),
            end: self.end.clone().min(other.end.clone()),
        }
    }

    /// Splits at `cut` into `([begin, cut), [cut, end))`, clamping `cut`
    /// into the interval. This is the partitioning operator's mechanical
    /// half; choosing `cut` is policy (see `gridbnb-core`).
    pub fn split_at(&self, cut: &UBig) -> (Interval, Interval) {
        let cut = cut.clone().max(self.begin.clone()).min(self.end.clone());
        (
            Interval::new(self.begin.clone(), cut.clone()),
            Interval::new(cut, self.end.clone()),
        )
    }

    /// Advances the lower endpoint to `new_begin` (exploration progress).
    /// Never moves backwards.
    pub fn advance_begin(&mut self, new_begin: &UBig) {
        if *new_begin > self.begin {
            self.begin = new_begin.clone();
        }
    }

    /// Retreats the upper endpoint to `new_end` (work stolen from the
    /// tail). Never moves forwards.
    pub fn retreat_end(&mut self, new_end: &UBig) {
        if *new_end < self.end {
            self.end = new_end.clone();
        }
    }

    /// Serialized size in bytes of the two endpoints — the message cost
    /// that the paper's coding minimizes (compared in the
    /// `coding_vs_nodelist` benchmark).
    pub fn byte_len(&self) -> usize {
        self.begin.byte_len() + self.end.byte_len()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.begin, self.end)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interval[{}, {})", self.begin, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    #[test]
    fn emptiness() {
        assert!(Interval::empty().is_empty());
        assert!(iv(5, 5).is_empty());
        assert!(iv(6, 5).is_empty());
        assert!(!iv(5, 6).is_empty());
    }

    #[test]
    fn length_saturates_on_inverted() {
        assert!(iv(9, 3).length().is_zero());
        assert_eq!(iv(3, 9).length().to_u64(), Some(6));
    }

    #[test]
    fn contains_is_half_open() {
        let i = iv(10, 20);
        assert!(i.contains(&UBig::from(10u64)));
        assert!(i.contains(&UBig::from(19u64)));
        assert!(!i.contains(&UBig::from(20u64)));
        assert!(!i.contains(&UBig::from(9u64)));
    }

    #[test]
    fn contains_interval_subset_cases() {
        let outer = iv(10, 20);
        assert!(outer.contains_interval(&iv(10, 20)));
        assert!(outer.contains_interval(&iv(12, 15)));
        assert!(outer.contains_interval(&iv(3, 3))); // empty is subset
        assert!(!outer.contains_interval(&iv(9, 12)));
        assert!(!outer.contains_interval(&iv(15, 21)));
    }

    #[test]
    fn intersect_equation_14() {
        assert_eq!(iv(0, 10).intersect(&iv(5, 15)), iv(5, 10));
        assert_eq!(iv(5, 15).intersect(&iv(0, 10)), iv(5, 10));
        assert!(iv(0, 5).intersect(&iv(5, 10)).is_empty());
        assert_eq!(iv(0, 10).intersect(&iv(0, 10)), iv(0, 10));
    }

    #[test]
    fn intersect_models_concurrent_progress() {
        // Worker explored up to 7 (begin 7); coordinator stole the tail
        // down to end 8. The live interval is their intersection.
        let worker = iv(7, 10);
        let coordinator = iv(0, 8);
        assert_eq!(worker.intersect(&coordinator), iv(7, 8));
    }

    #[test]
    fn overlaps_cases() {
        assert!(iv(0, 10).overlaps(&iv(9, 12)));
        assert!(!iv(0, 10).overlaps(&iv(10, 12)));
        assert!(!iv(0, 10).overlaps(&iv(12, 12)));
    }

    #[test]
    fn split_at_partitions() {
        let (l, r) = iv(10, 20).split_at(&UBig::from(13u64));
        assert_eq!(l, iv(10, 13));
        assert_eq!(r, iv(13, 20));
    }

    #[test]
    fn split_at_clamps() {
        let (l, r) = iv(10, 20).split_at(&UBig::from(5u64));
        assert!(l.is_empty());
        assert_eq!(r, iv(10, 20));
        let (l2, r2) = iv(10, 20).split_at(&UBig::from(25u64));
        assert_eq!(l2, iv(10, 20));
        assert!(r2.is_empty());
    }

    #[test]
    fn advance_and_retreat_are_monotone() {
        let mut i = iv(10, 20);
        i.advance_begin(&UBig::from(15u64));
        assert_eq!(i, iv(15, 20));
        i.advance_begin(&UBig::from(12u64)); // no-op: backwards
        assert_eq!(i, iv(15, 20));
        i.retreat_end(&UBig::from(18u64));
        assert_eq!(i, iv(15, 18));
        i.retreat_end(&UBig::from(19u64)); // no-op: forwards
        assert_eq!(i, iv(15, 18));
    }

    #[test]
    fn byte_len_counts_both_endpoints() {
        assert_eq!(iv(255, 256).byte_len(), 1 + 2);
        let big = Interval::new(UBig::zero(), UBig::factorial(50));
        assert_eq!(big.byte_len(), 27); // begin 0 contributes no bytes
    }

    #[test]
    fn display_format() {
        assert_eq!(iv(3, 9).to_string(), "[3, 9)");
    }
}
