//! Node paths: positions in a regular tree, their numbers and ranges.

use crate::{Interval, TreeShape};
use gridbnb_bigint::UBig;
use std::fmt;

/// A node of a regular tree, identified by the ranks taken from the root
/// (the paper's `rank(i)` along `path(n)`, §3.2).
///
/// `ranks[i]` is the rank (0-based birth order) of the path node at depth
/// `i + 1`; the root is the empty path. For a permutation tree the ranks
/// are exactly the digits of the node number in the factorial number
/// system.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodePath {
    ranks: Vec<u64>,
}

impl NodePath {
    /// The root node (empty path, depth 0, number 0).
    pub fn root() -> Self {
        NodePath { ranks: Vec::new() }
    }

    /// Builds a path from explicit ranks.
    pub fn from_ranks(ranks: Vec<u64>) -> Self {
        NodePath { ranks }
    }

    /// The ranks from the root (one per depth, starting at depth 1).
    #[inline]
    pub fn ranks(&self) -> &[u64] {
        &self.ranks
    }

    /// Depth of this node; the root has depth 0.
    #[inline]
    pub fn depth(&self) -> usize {
        self.ranks.len()
    }

    /// `true` iff the node is a leaf of `shape`.
    pub fn is_leaf(&self, shape: &TreeShape) -> bool {
        self.depth() == shape.leaf_depth()
    }

    /// The child obtained by branching with `rank`.
    ///
    /// # Panics
    ///
    /// Panics if the node is a leaf or `rank` is out of range for the
    /// node's depth in `shape` (debug-checked).
    pub fn child(&self, shape: &TreeShape, rank: u64) -> NodePath {
        debug_assert!(self.depth() < shape.leaf_depth(), "leaf has no children");
        debug_assert!(rank < shape.arity_at(self.depth()), "rank out of range");
        let mut ranks = Vec::with_capacity(self.ranks.len() + 1);
        ranks.extend_from_slice(&self.ranks);
        ranks.push(rank);
        NodePath { ranks }
    }

    /// The parent node, or `None` for the root.
    pub fn parent(&self) -> Option<NodePath> {
        if self.ranks.is_empty() {
            None
        } else {
            Some(NodePath {
                ranks: self.ranks[..self.ranks.len() - 1].to_vec(),
            })
        }
    }

    /// The node's number (paper equation 6):
    /// `number(n) = Σ_{i ∈ path(n)} rank(i) · weight(i)`.
    ///
    /// Equal to the number of the leftmost leaf of the node's subtree, and
    /// to the count of leaves visited strictly before this subtree in a
    /// depth-first traversal.
    pub fn number(&self, shape: &TreeShape) -> UBig {
        let mut n = UBig::zero();
        for (i, &rank) in self.ranks.iter().enumerate() {
            if rank != 0 {
                n += &shape.weight_at(i + 1).mul_u64(rank);
            }
        }
        n
    }

    /// The node's range (paper equation 7):
    /// `[number, number + weight)`.
    pub fn range(&self, shape: &TreeShape) -> Interval {
        let begin = self.number(shape);
        let end = &begin + shape.weight_at(self.depth());
        Interval::new(begin, end)
    }

    /// The weight of this node in `shape` — leaves of its subtree.
    pub fn weight<'a>(&self, shape: &'a TreeShape) -> &'a UBig {
        shape.weight_at(self.depth())
    }

    /// The path of the unique **leaf** numbered `number`: the mixed-radix
    /// (for permutation trees: factoradic) decomposition of the number.
    ///
    /// # Panics
    ///
    /// Panics if `number >= total_leaves`.
    pub fn leaf_with_number(shape: &TreeShape, number: &UBig) -> NodePath {
        assert!(
            number < shape.total_leaves(),
            "leaf number out of range: {number}"
        );
        let mut ranks = Vec::with_capacity(shape.leaf_depth());
        let mut rem = number.clone();
        for depth in 1..=shape.leaf_depth() {
            let weight = shape.weight_at(depth);
            // rank = rem / weight; arities are u64 so the quotient fits.
            let (q, r) = rem.div_rem(weight);
            let rank = q.to_u64().expect("rank exceeds arity bound");
            debug_assert!(rank < shape.arity_at(depth - 1));
            ranks.push(rank);
            rem = r;
        }
        debug_assert!(rem.is_zero());
        NodePath { ranks }
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_number_zero_and_full_range() {
        let shape = TreeShape::permutation(4);
        let root = NodePath::root();
        assert!(root.number(&shape).is_zero());
        assert_eq!(root.range(&shape), shape.root_range());
        assert_eq!(root.depth(), 0);
        assert!(root.parent().is_none());
    }

    #[test]
    fn paper_figure_2_numbers() {
        // Figure 2 of the paper: permutation tree over 3 elements.
        // Depth-1 children have weight 2! = 2, so their numbers are
        // 0, 2, 4; depth-2 numbers advance by 1! = 1.
        let shape = TreeShape::permutation(3);
        let root = NodePath::root();
        let numbers: Vec<u64> = (0..3)
            .map(|r| root.child(&shape, r).number(&shape).to_u64().unwrap())
            .collect();
        assert_eq!(numbers, vec![0, 2, 4]);
        let c1 = root.child(&shape, 1);
        let grandchildren: Vec<u64> = (0..2)
            .map(|r| c1.child(&shape, r).number(&shape).to_u64().unwrap())
            .collect();
        assert_eq!(grandchildren, vec![2, 3]);
    }

    #[test]
    fn paper_figure_3_ranges() {
        // Ranges of depth-1 nodes of the 3-permutation tree: [0,2) [2,4) [4,6).
        let shape = TreeShape::permutation(3);
        let root = NodePath::root();
        for r in 0..3 {
            let range = root.child(&shape, r).range(&shape);
            assert_eq!(range.begin().to_u64(), Some(2 * r));
            assert_eq!(range.end().to_u64(), Some(2 * r + 2));
        }
    }

    #[test]
    fn sibling_ranges_are_contiguous() {
        // Equation 9 precondition: B_i == A_{i+1} for consecutive siblings.
        let shape = TreeShape::from_arities(vec![3, 2, 4]);
        let parent = NodePath::root().child(&shape, 1);
        for r in 0..shape.arity_at(1) - 1 {
            let this = parent.child(&shape, r).range(&shape);
            let next = parent.child(&shape, r + 1).range(&shape);
            assert_eq!(this.end(), next.begin());
        }
    }

    #[test]
    fn child_range_inside_parent_range() {
        let shape = TreeShape::permutation(5);
        let n = NodePath::root().child(&shape, 3).child(&shape, 2);
        let parent_range = n.parent().unwrap().range(&shape);
        assert!(parent_range.contains_interval(&n.range(&shape)));
    }

    #[test]
    fn leaf_weight_is_one_and_range_is_singleton() {
        let shape = TreeShape::permutation(3);
        let leaf = NodePath::from_ranks(vec![2, 1, 0]);
        assert!(leaf.is_leaf(&shape));
        assert_eq!(leaf.weight(&shape).to_u64(), Some(1));
        assert_eq!(leaf.range(&shape).length().to_u64(), Some(1));
    }

    #[test]
    fn leaf_numbers_enumerate_dfs_order() {
        // Depth-first traversal visits leaves exactly in number order.
        let shape = TreeShape::permutation(4);
        let mut expected = 0u64;
        let mut stack = vec![NodePath::root()];
        while let Some(node) = stack.pop() {
            if node.is_leaf(&shape) {
                assert_eq!(node.number(&shape).to_u64(), Some(expected));
                expected += 1;
            } else {
                for r in (0..shape.arity_at(node.depth())).rev() {
                    stack.push(node.child(&shape, r));
                }
            }
        }
        assert_eq!(expected, 24);
    }

    #[test]
    fn leaf_with_number_round_trips() {
        let shape = TreeShape::from_arities(vec![3, 2, 4, 2]);
        let total = shape.total_leaves().to_u64().unwrap();
        for n in 0..total {
            let leaf = NodePath::leaf_with_number(&shape, &UBig::from(n));
            assert_eq!(leaf.number(&shape).to_u64(), Some(n));
            assert!(leaf.is_leaf(&shape));
        }
    }

    #[test]
    fn leaf_with_number_at_ta056_scale() {
        // Factoradic decomposition works beyond u128.
        let shape = TreeShape::permutation(50);
        let number = shape.total_leaves().saturating_sub(&UBig::one());
        let leaf = NodePath::leaf_with_number(&shape, &number);
        assert_eq!(leaf.number(&shape), number);
        // Last leaf takes the maximal rank everywhere.
        for (i, &r) in leaf.ranks().iter().enumerate() {
            assert_eq!(r, shape.arity_at(i) - 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_with_number_rejects_overflow() {
        let shape = TreeShape::permutation(3);
        let _ = NodePath::leaf_with_number(&shape, &UBig::from(6u64));
    }

    #[test]
    fn display_shows_ranks() {
        assert_eq!(NodePath::from_ranks(vec![2, 0, 1]).to_string(), "<2.0.1>");
        assert_eq!(NodePath::root().to_string(), "<>");
    }
}
