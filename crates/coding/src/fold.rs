//! The fold operator (paper §3.4): active node list → interval.

use crate::{Interval, NodePath, TreeShape};
use std::fmt;

/// Why a node list could not be folded into a single interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// An empty active list folds to nothing (the exploration is over).
    EmptyList,
    /// Equation 9 is violated: the range of node `index` does not end
    /// where the range of node `index + 1` begins, so the union of ranges
    /// is not an interval. Only depth-first active lists are foldable.
    NotContiguous {
        /// Position (in the input list) of the first offending node.
        index: usize,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::EmptyList => write!(f, "cannot fold an empty active list"),
            FoldError::NotContiguous { index } => write!(
                f,
                "active list is not a DFS frontier: gap after node at position {index}"
            ),
        }
    }
}

impl std::error::Error for FoldError {}

/// Folds a depth-first active list into the interval covering exactly the
/// node numbers reachable from it (paper equation 10):
///
/// `interval(N) = [number(N₁), number(N_k) + weight(N_k))`
///
/// The input must be in DFS order and contiguous (equation 9); this is
/// verified — the cost of verification is the same O(k) as the fold
/// itself, and a silent mis-fold would lose or duplicate work units.
pub fn fold(shape: &TreeShape, nodes: &[NodePath]) -> Result<Interval, FoldError> {
    let first = nodes.first().ok_or(FoldError::EmptyList)?;
    let mut prev_end = first.range(shape).end().clone();
    for (index, node) in nodes.iter().enumerate().skip(1) {
        let range = node.range(shape);
        if *range.begin() != prev_end {
            return Err(FoldError::NotContiguous { index: index - 1 });
        }
        prev_end = range.end().clone();
    }
    Ok(Interval::new(first.number(shape), prev_end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_bigint::UBig;

    #[test]
    fn fold_single_node_gives_its_range() {
        let shape = TreeShape::permutation(4);
        let node = NodePath::root().child(&shape, 2);
        let folded = fold(&shape, std::slice::from_ref(&node)).unwrap();
        assert_eq!(folded, node.range(&shape));
    }

    #[test]
    fn fold_root_gives_full_space() {
        let shape = TreeShape::permutation(5);
        let folded = fold(&shape, &[NodePath::root()]).unwrap();
        assert_eq!(folded, shape.root_range());
    }

    #[test]
    fn fold_paper_figure_4_frontier() {
        // A DFS frontier of the 3-permutation tree: the leaf <0.1.0>
        // (number 1), then sibling subtree <1> ([2,4)) and <2> ([4,6)).
        let shape = TreeShape::permutation(3);
        let frontier = vec![
            NodePath::from_ranks(vec![0, 1, 0]),
            NodePath::from_ranks(vec![1]),
            NodePath::from_ranks(vec![2]),
        ];
        let folded = fold(&shape, &frontier).unwrap();
        assert_eq!(folded, shape.interval(1u64, 6u64));
    }

    #[test]
    fn fold_empty_list_errors() {
        let shape = TreeShape::permutation(3);
        assert_eq!(fold(&shape, &[]), Err(FoldError::EmptyList));
    }

    #[test]
    fn fold_detects_gap() {
        let shape = TreeShape::permutation(3);
        // <0> covers [0,2) and <2> covers [4,6): the subtree <1> is missing.
        let broken = vec![NodePath::from_ranks(vec![0]), NodePath::from_ranks(vec![2])];
        assert_eq!(
            fold(&shape, &broken),
            Err(FoldError::NotContiguous { index: 0 })
        );
    }

    #[test]
    fn fold_detects_wrong_order() {
        let shape = TreeShape::permutation(3);
        let reversed = vec![NodePath::from_ranks(vec![1]), NodePath::from_ranks(vec![0])];
        assert!(matches!(
            fold(&shape, &reversed),
            Err(FoldError::NotContiguous { .. })
        ));
    }

    #[test]
    fn fold_detects_overlap() {
        let shape = TreeShape::permutation(3);
        // A parent followed by its own child overlaps.
        let overlapping = vec![
            NodePath::from_ranks(vec![0]),
            NodePath::from_ranks(vec![0, 0]),
        ];
        assert!(matches!(
            fold(&shape, &overlapping),
            Err(FoldError::NotContiguous { .. })
        ));
    }

    #[test]
    fn fold_mixed_depth_frontier_at_scale() {
        // Frontier of a 50-permutation tree spanning numbers that only
        // fit in big integers.
        let shape = TreeShape::permutation(50);
        let deep = NodePath::from_ranks(vec![48; 1]); // child 48 of root: [48·49!, 49·49!)
        let last = NodePath::from_ranks(vec![49]);
        let folded = fold(&shape, &[deep, last]).unwrap();
        assert_eq!(*folded.begin(), UBig::factorial(49).mul_u64(48),);
        assert_eq!(*folded.end(), UBig::factorial(50));
    }
}
