//! Regular tree shapes and their per-depth weight tables.

use crate::Interval;
use gridbnb_bigint::UBig;

/// The shape of a regular search tree: every node at the same depth has
/// the same number of children, so weights (equation 1 of the paper)
/// collapse to one value per depth (equations 2 and 3).
///
/// The root is at depth `0`; leaves are at depth [`TreeShape::leaf_depth`]
/// (the paper's `P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeShape {
    /// `arities[d]` = number of children of an internal node at depth `d`,
    /// for `d ∈ [0, P)`.
    arities: Vec<u64>,
    /// `weights[d]` = number of leaves of the subtree rooted at depth `d`,
    /// for `d ∈ [0, P]`; `weights[P] == 1`.
    weights: Vec<UBig>,
}

impl TreeShape {
    /// A regular tree given the arity of each internal depth.
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero (a depth with no children would make
    /// deeper depths unreachable, contradicting regularity).
    pub fn from_arities(arities: Vec<u64>) -> Self {
        assert!(
            arities.iter().all(|&a| a > 0),
            "tree arities must be positive"
        );
        let depth = arities.len();
        let mut weights = vec![UBig::one(); depth + 1];
        for d in (0..depth).rev() {
            weights[d] = weights[d + 1].mul_u64(arities[d]);
        }
        TreeShape { arities, weights }
    }

    /// The permutation tree over `n` elements (paper equation 3): depth
    /// `d` nodes have `n − d` children and weight `(n − d)!`.
    ///
    /// Internal nodes at depth `d` correspond to partial permutations of
    /// `d` fixed elements; the `n!` leaves are the complete permutations.
    pub fn permutation(n: usize) -> Self {
        Self::from_arities((0..n).map(|d| (n - d) as u64).collect())
    }

    /// The complete binary tree of height `height` (paper equation 2):
    /// weight `2^(P−d)` at depth `d`.
    pub fn binary(height: usize) -> Self {
        Self::from_arities(vec![2; height])
    }

    /// Depth of the leaves (the paper's `P`). The root is depth 0.
    #[inline]
    pub fn leaf_depth(&self) -> usize {
        self.arities.len()
    }

    /// Number of children of an internal node at `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= leaf_depth()` (leaves have no children).
    #[inline]
    pub fn arity_at(&self, depth: usize) -> u64 {
        self.arities[depth]
    }

    /// Weight of a node at `depth`: the number of leaves of its subtree.
    ///
    /// # Panics
    ///
    /// Panics if `depth > leaf_depth()`.
    #[inline]
    pub fn weight_at(&self, depth: usize) -> &UBig {
        &self.weights[depth]
    }

    /// Total number of leaves, i.e. the weight of the root.
    #[inline]
    pub fn total_leaves(&self) -> &UBig {
        &self.weights[0]
    }

    /// The range of the root: `[0, total_leaves)` — the interval that
    /// initializes the coordinator's `INTERVALS` set (paper §4.3).
    pub fn root_range(&self) -> Interval {
        Interval::new(UBig::zero(), self.total_leaves().clone())
    }

    /// Convenience constructor for an interval `[begin, end)` of node
    /// numbers in this tree, clamped into the root range.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the total number of leaves.
    pub fn interval(&self, begin: impl Into<UBig>, end: impl Into<UBig>) -> Interval {
        let begin = begin.into();
        let end = end.into();
        assert!(
            end <= *self.total_leaves(),
            "interval end exceeds the root range"
        );
        Interval::new(begin, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_weights_are_factorials() {
        let shape = TreeShape::permutation(5);
        assert_eq!(shape.leaf_depth(), 5);
        for d in 0..=5 {
            assert_eq!(*shape.weight_at(d), UBig::factorial(5 - d as u32));
        }
        assert_eq!(shape.total_leaves().to_u64(), Some(120));
    }

    #[test]
    fn permutation_arities_decrease() {
        let shape = TreeShape::permutation(4);
        assert_eq!(shape.arity_at(0), 4);
        assert_eq!(shape.arity_at(1), 3);
        assert_eq!(shape.arity_at(2), 2);
        assert_eq!(shape.arity_at(3), 1);
    }

    #[test]
    fn binary_weights_are_powers_of_two() {
        let shape = TreeShape::binary(10);
        for d in 0..=10 {
            assert_eq!(*shape.weight_at(d), UBig::pow2(10 - d));
        }
    }

    #[test]
    fn mixed_radix_weight_is_suffix_product() {
        let shape = TreeShape::from_arities(vec![3, 1, 4, 2]);
        assert_eq!(shape.total_leaves().to_u64(), Some(24));
        assert_eq!(shape.weight_at(1).to_u64(), Some(8));
        assert_eq!(shape.weight_at(2).to_u64(), Some(8));
        assert_eq!(shape.weight_at(3).to_u64(), Some(2));
        assert_eq!(shape.weight_at(4).to_u64(), Some(1));
    }

    #[test]
    fn degenerate_single_node_tree() {
        let shape = TreeShape::from_arities(vec![]);
        assert_eq!(shape.leaf_depth(), 0);
        assert_eq!(shape.total_leaves().to_u64(), Some(1));
        assert_eq!(shape.root_range().length().to_u64(), Some(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_arity_rejected() {
        TreeShape::from_arities(vec![2, 0, 2]);
    }

    #[test]
    fn ta056_scale_weights() {
        // The shape used by the paper's flagship instance: 50 jobs.
        let shape = TreeShape::permutation(50);
        assert_eq!(*shape.total_leaves(), UBig::factorial(50));
        assert!(shape.total_leaves().bit_len() > 128, "needs big integers");
    }

    #[test]
    fn root_range_starts_at_zero() {
        let shape = TreeShape::permutation(6);
        let root = shape.root_range();
        assert!(root.begin().is_zero());
        assert_eq!(*root.end(), UBig::factorial(6));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn interval_constructor_checks_bounds() {
        let shape = TreeShape::permutation(3);
        let _ = shape.interval(0u64, 7u64); // 3! = 6 < 7
    }
}
