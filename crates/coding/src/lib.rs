//! Interval coding of branch-and-bound work units.
//!
//! This crate implements §3 of Mezmaz, Melab and Talbi, *A Grid-enabled
//! Branch and Bound Algorithm for Solving Challenging Combinatorial
//! Optimization Problems* (INRIA RR-5945 / IPDPS 2007): a numbering of the
//! nodes of a **regular search tree** such that the set of tree nodes
//! covered by any depth-first *active list* is exactly an integer interval
//! `[A, B)`. The interval (two big integers) replaces the serialized node
//! list in every communication and checkpoint, which is what lets the
//! farmer–worker algorithm of §4 scale to thousands of workers.
//!
//! # Concepts (paper §3.1–§3.3)
//!
//! * **weight** of a node — the number of leaves of its subtree
//!   (equations 1–3). In a regular tree it only depends on the depth, so
//!   [`TreeShape`] precomputes one weight per depth.
//! * **number** of a node — `Σ rank(i) · weight(i)` over the nodes `i` on
//!   its root path (equation 6); see [`NodePath::number`].
//! * **range** of a node — `[number, number + weight)` (equation 7); the
//!   numbers of every node of its subtree fall in this interval.
//!
//! # Operators (paper §3.4–§3.5)
//!
//! * [`fold`] — active list → interval (equation 10);
//! * [`unfold`] — interval → the unique minimal active list covering it
//!   (equations 11–13), implemented both as the paper's elimination
//!   B&B ([`unfold`]) and as a direct mixed-radix boundary walk
//!   ([`unfold_direct`]); the two are property-tested equal.
//!
//! # Example
//!
//! ```
//! use gridbnb_coding::{fold, unfold, TreeShape};
//!
//! // The permutation tree over 4 elements: 24 leaves.
//! let shape = TreeShape::permutation(4);
//! assert_eq!(shape.total_leaves().to_u64(), Some(24));
//!
//! // Cut out the middle of the search space ...
//! let interval = shape.interval(7u64, 19u64);
//! // ... and materialize the minimal set of subtrees covering it.
//! let nodes = unfold(&shape, &interval);
//! assert_eq!(fold(&shape, &nodes).unwrap(), interval);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fold;
mod interval;
mod path;
mod set;
mod shape;
mod unfold;

pub use fold::{fold, FoldError};
pub use interval::Interval;
pub use path::NodePath;
pub use set::IntervalSet;
pub use shape::TreeShape;
pub use unfold::{unfold, unfold_direct};

pub use gridbnb_bigint::UBig;
