//! Offline stand-in for the exact `rand` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the pieces it needs: [`rngs::StdRng`] (xoshiro256++ seeded via
//! splitmix64), [`SeedableRng::seed_from_u64`], [`RngExt::random_range`]
//! over half-open ranges of integers and `f64`, and
//! [`seq::SliceRandom::shuffle`]. Determinism is the only contract the
//! workspace relies on (every caller seeds explicitly); the statistical
//! quality of xoshiro256++ is far beyond what the heuristics and the
//! volatility sampler require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sources of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open `start..end` range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                start.wrapping_add((r % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = start + unit * (end - start);
        // Rounding can land exactly on `end`; fold it back into the range.
        if v >= end {
            start
        } else {
            v
        }
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from the half-open range `range.start..range.end`.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The standard seedable generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and more than random enough for the
    /// heuristics and simulators in this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
