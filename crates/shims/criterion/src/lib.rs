//! Offline stand-in for the `criterion` API subset this workspace's
//! benches use. It is a *real* measuring harness, just a small one:
//! per benchmark it warms up, auto-calibrates an iteration count so each
//! sample takes ~5 ms, collects `sample_size` samples, and reports the
//! median ns/iteration (plus min/max) on stdout.
//!
//! Set `CRITERION_JSON=/path/to/out.json` to additionally write all
//! results of the process as a JSON array — the repository's
//! `BENCH_coordinator.json` baseline is produced this way (see the
//! workspace README).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per setup.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One measured result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function/parameter`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The measurement driver handed to bench closures.
pub struct Bencher<'m> {
    sample_size: usize,
    result: &'m mut Option<(f64, f64, f64, usize, u64)>,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(5);

impl<'m> Bencher<'m> {
    fn record(&mut self, mut one_sample: impl FnMut(u64) -> Duration) {
        // Warm up and calibrate: how many iterations fill ~5 ms?
        let mut iters: u64 = 1;
        loop {
            let t = one_sample(iters);
            if t >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            let scale = if t.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / t.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(scale);
        }
        let mut samples_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| one_sample(iters).as_nanos() as f64 / iters as f64)
            .collect();
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        *self.result = Some((
            median,
            samples_ns[0],
            samples_ns[samples_ns.len() - 1],
            samples_ns.len(),
            iters,
        ));
    }

    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.record(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            t0.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded, and — like real criterion — the routine's outputs are
    /// collected and dropped *outside* the measurement, so returning a
    /// large consumed input excludes its teardown from the timing.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.record(|iters| {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let mut outputs: Vec<O> = Vec::with_capacity(inputs.len());
            let t0 = Instant::now();
            for input in inputs {
                outputs.push(black_box(routine(input)));
            }
            let elapsed = t0.elapsed();
            drop(outputs);
            elapsed
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut result = None;
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        match result {
            Some((median, min, max, samples, iters)) => {
                println!(
                    "{full_id:<48} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {samples} samples x {iters} iters)"
                );
                self.criterion.results.push(BenchResult {
                    id: full_id,
                    median_ns: median,
                    min_ns: min,
                    max_ns: max,
                    samples,
                    iters_per_sample: iters,
                });
            }
            None => println!("{full_id:<48} (no measurement recorded)"),
        }
    }

    /// Benches a closure under `id`.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher<'_>)) {
        let id = id.into_id();
        self.run(id, f);
    }

    /// Benches a closure under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) {
        self.run(id.id, |b| f(b, input));
    }

    /// Ends the group (no-op beyond symmetry with criterion).
    pub fn finish(&mut self) {}
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benches a stand-alone closure (group-less).
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report if `CRITERION_JSON` is set. Called by
    /// `criterion_main!` after all groups ran.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: failed to write {path}: {e}");
        } else {
            println!(
                "criterion shim: wrote {} results to {path}",
                self.results.len()
            );
        }
    }
}

/// Declares a group function running each bench target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each group then finalizing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.median_ns >= 0.0));
        assert!(c.results()[0].id.starts_with("t/spin"));
        assert_eq!(c.results()[1].id, "t/param/4");
    }
}
