//! Offline stand-in for the exact `crossbeam` API subset this workspace
//! uses: `channel::{unbounded, Sender, Receiver, RecvTimeoutError}` and
//! `thread::scope` with crossbeam's closure signature (the spawn closure
//! receives a throwaway argument). Everything is delegated to the
//! standard library — `std::sync::mpsc` and `std::thread::scope` cover
//! the runtime's needs (single consumer per channel, scoped borrows of
//! the problem and config).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// An unbounded channel; `std::sync::mpsc::channel` is already
    /// unbounded and its `Sender` is clonable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (std-backed).
pub mod thread {
    /// Wrapper over [`std::thread::Scope`] reproducing crossbeam's spawn
    /// signature, where the closure receives a scope argument (callers in
    /// this workspace ignore it, so a unit placeholder is passed).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure's argument is a
        /// placeholder for crossbeam's nested-scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns. Unlike
    /// crossbeam, a panicking child propagates the panic here instead of
    /// surfacing it in the returned `Result` — callers `.expect()` the
    /// result either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip_with_timeout() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(5));
        assert!(matches!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(super::channel::RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let data = &data;
        let mut results = Vec::new();
        super::thread::scope(|scope| {
            let handles: Vec<_> = (0..3).map(|i| scope.spawn(move |_| data[i] * 10)).collect();
            for h in handles {
                results.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30]);
    }
}
