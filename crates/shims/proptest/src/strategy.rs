//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u128) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
