//! Offline stand-in for the `proptest` API subset this workspace's
//! property tests use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal property-testing harness with the same surface:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! strategies built from ranges / tuples / [`strategy::Just`] /
//! [`collection::vec`] / [`arbitrary::any`] with
//! [`strategy::Strategy::prop_map`] and [`prop_oneof!`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion forms.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   the panic message's `Debug` dump but is not minimized;
//! * **fixed seeding** — cases derive deterministically from the test
//!   body's execution order, so CI runs are reproducible. Set
//!   `PROPTEST_CASES` to raise or lower the case count globally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Deterministic generator state threaded through strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of a fixed global stream.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x6A09_E667_F3BC_C909 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (0 yields 0).
    pub fn below(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        let r = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        r % bound
    }
}

/// Test-runner types: configuration and case-level errors.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` and is not counted.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met).
        pub fn reject(_reason: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the config.
    pub fn effective_cases(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
            .max(1)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// Strategy generating unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()`, ...).
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy for `Vec`s of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: std::fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.max_exclusive.saturating_sub(self.min).max(1);
            let len = self.min + rng.below(span as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }
}

/// Random index into slices of a length only known at use time.
pub mod sample {
    /// A deferred slice index: resolves against a length via
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// The index this value denotes within a collection of `len`
        /// elements. Panics on `len == 0` like real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current case with a formatted reason unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Rejects the current case (uncounted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among the given strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::effective_cases(&config);
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            let mut stream: u64 = 0;
            while passed < cases {
                let mut rng = $crate::TestRng::for_case(stream);
                stream += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "proptest shim: too many prop_assume! rejections ({} passed)",
                            passed
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!("proptest case {} failed: {}", stream - 1, reason);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 0usize..4, c in 1u32..=5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((1..=5).contains(&c));
        }

        #[test]
        fn tuples_maps_and_vecs(v in crate::collection::vec((0u64..10, any::<bool>()).prop_map(|(n, f)| if f { n } else { 0 }), 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&n| n < 10));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(7u64), 0u64..3]) {
            prop_assert!(x == 7 || x < 3, "unexpected {}", x);
        }

        #[test]
        fn assume_rejects_uncounted(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failure_reports_reason() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn inner(n in 0u64..2) {
                    prop_assert!(n > 10, "n was {}", n);
                }
            }
            inner();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("n was"), "got: {msg}");
    }
}
