//! Pooled ≡ scalar equivalence on random QAP instances, driving the
//! screen-first `lower_bound_batch` kernel through the engine's lockstep
//! harness across all three bound tiers.

use gridbnb_engine::equivalence::{
    assert_pooled_matches_scalar, assert_pooled_matches_scalar_simple, permille_interval,
    Interference,
};
use gridbnb_qap::{Bound, Problem, QapInstance, QapProblem};
use proptest::prelude::*;

fn arb_bound() -> impl Strategy<Value = Bound> {
    prop_oneof![
        Just(Bound::Screen),
        Just(Bound::GilmoreLawler),
        Just(Bound::Tiered),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_matches_scalar_on_random_instances(
        n in 4usize..7,
        seed in 0u64..10_000,
        bound in arb_bound(),
        a in 0u64..1001,
        b in 0u64..1001,
    ) {
        let instance = QapInstance::random(n, seed);
        let problem = QapProblem::new(instance, bound);
        let total = problem.shape().root_range().end().clone();
        let interval = permille_interval(&total, a, b);
        assert_pooled_matches_scalar_simple(&problem, &interval, None);
    }

    #[test]
    fn pooled_matches_scalar_on_grids_under_steals_and_cutoffs(
        cols in 2usize..4,
        seed in 0u64..10_000,
        bound in arb_bound(),
        slice in 1u64..40,
        period in 1usize..5,
    ) {
        // Structured (grid) instances with a greedy incumbent: the
        // screen-vs-GL gap is real here, so fill-time screens and
        // consumption-time cutoffs genuinely diverge in *values* while
        // the search must stay identical in *decisions*.
        let instance = QapInstance::nugent_style(2, cols, seed);
        let problem = QapProblem::new(instance, bound);
        let (_, ub) = gridbnb_qap::greedy::greedy_construct(problem.instance());
        let interval = problem.shape().root_range();
        assert_pooled_matches_scalar(
            &problem,
            &interval,
            Some(ub + 1),
            slice,
            Interference {
                shrink_period: period,
                keep_num: 2,
                keep_den: 3,
                external_cutoff: ub,
            },
        );
    }
}
