//! Property tests for the QAP campaign substrate: the LAP solver
//! against a permutation-enumeration oracle, and the bound tiers'
//! admissibility and dominance contracts at arbitrary partial states.

use gridbnb_qap::bounds::{
    gilmore_lawler_bound, gilmore_lawler_bound_cached, screen_bound, GlRowCache,
};
use gridbnb_qap::lap::solve_lap;
use gridbnb_qap::QapInstance;
use proptest::prelude::*;

/// SplitMix64 — the tests' own deterministic stream.
fn splitmix(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed;
    move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Minimum assignment cost by exhaustive enumeration.
fn brute_lap(n: usize, cost: &[u64]) -> u64 {
    let mut cols: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    permute(&mut cols, 0, &mut |p| {
        best = best.min(
            p.iter()
                .enumerate()
                .map(|(row, &col)| cost[row * n + col])
                .sum(),
        );
    });
    best
}

/// A random placement prefix of `len` facilities (deterministic in
/// `seed`) plus the matching used-location mask and exact placed cost.
fn random_prefix(instance: &QapInstance, len: usize, seed: u64) -> (Vec<u16>, u64, u64) {
    let n = instance.n();
    let mut next = splitmix(seed);
    let mut locations: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        locations.swap(i, j);
    }
    let placement: Vec<u16> = locations[..len].iter().map(|&l| l as u16).collect();
    let used = placement.iter().fold(0u64, |m, &p| m | (1 << p));
    let mut base = 0;
    for (i, &a) in placement.iter().enumerate() {
        for (j, &b) in placement.iter().enumerate() {
            base += instance.flow(i, j) * instance.dist(a as usize, b as usize);
        }
    }
    (placement, used, base)
}

/// Best completion of a placement prefix, by brute force.
fn best_completion(instance: &QapInstance, placement: &[u16]) -> u64 {
    let n = instance.n();
    let mut free: Vec<usize> = (0..n)
        .filter(|l| !placement.iter().any(|&p| p as usize == *l))
        .collect();
    let mut best = u64::MAX;
    permute(&mut free, 0, &mut |tail| {
        let full: Vec<usize> = placement
            .iter()
            .map(|&p| p as usize)
            .chain(tail.iter().copied())
            .collect();
        best = best.min(instance.cost(&full));
    });
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Hungarian solver must match exhaustive enumeration exactly,
    /// and its reported assignment must be a permutation evaluating to
    /// the reported total.
    #[test]
    fn lap_matches_permutation_oracle(
        n in 2usize..6,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut next = splitmix(seed);
        let cost: Vec<u64> = (0..n * n).map(|_| next() % 10_000).collect();
        let solution = solve_lap(n, &cost);
        prop_assert_eq!(solution.total, brute_lap(n, &cost));
        let mut sorted = solution.assignment.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let evaluated: u64 = solution
            .assignment
            .iter()
            .enumerate()
            .map(|(row, &col)| cost[row * n + col])
            .sum();
        prop_assert_eq!(evaluated, solution.total);
    }

    /// Gilmore–Lawler is admissible at the root: it never exceeds the
    /// brute-force optimum (n ≤ 7 keeps 7! enumerable).
    #[test]
    fn gilmore_lawler_admissible_at_root(
        n in 4usize..8,
        seed in proptest::arbitrary::any::<u64>(),
        grid in proptest::arbitrary::any::<bool>(),
    ) {
        let instance = if grid && n == 6 {
            QapInstance::nugent_style(2, 3, seed)
        } else {
            QapInstance::random(n, seed)
        };
        let optimum = instance.brute_optimum();
        let gl = gilmore_lawler_bound(&instance, &[], 0, 0);
        prop_assert!(gl <= optimum, "GL {} > optimum {}", gl, optimum);
    }

    /// At arbitrary partial states: both bounds stay below the best
    /// completion, and Gilmore–Lawler dominates (or equals) the screen.
    #[test]
    fn bounds_admissible_and_gl_dominates_screen_at_partial_states(
        n in 4usize..7,
        depth_frac in 0u8..4,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let instance = QapInstance::random(n, seed);
        let depth = (n * depth_frac as usize) / 4;
        let (placement, used, base) = random_prefix(&instance, depth, seed ^ 0xABCD);
        let exact = best_completion(&instance, &placement);
        let screen = screen_bound(&instance, &placement, used, base);
        let gl = gilmore_lawler_bound(&instance, &placement, used, base);
        prop_assert!(screen <= exact, "screen {} > exact {}", screen, exact);
        prop_assert!(gl <= exact, "GL {} > exact {}", gl, exact);
        prop_assert!(gl >= screen, "GL {} below screen {}", gl, screen);
    }

    /// The precomputed-row Gilmore–Lawler (what the search runs) is
    /// value-identical to the re-sorting reference at every depth of
    /// arbitrary instances — grid and line families alike.
    #[test]
    fn cached_gl_rows_give_identical_bounds(
        n in 4usize..9,
        seed in proptest::arbitrary::any::<u64>(),
        grid in proptest::arbitrary::any::<bool>(),
    ) {
        let instance = if grid && n >= 6 {
            QapInstance::nugent_style(2, n / 2, seed)
        } else {
            QapInstance::random(n, seed)
        };
        let cache = GlRowCache::new(&instance);
        let n = instance.n();
        for depth in 0..=n {
            let (placement, used, base) = random_prefix(&instance, depth, seed ^ 0x6C0B);
            let fresh = gilmore_lawler_bound(&instance, &placement, used, base);
            let cached = gilmore_lawler_bound_cached(&instance, &cache, &placement, used, base);
            prop_assert_eq!(
                fresh, cached,
                "cached GL diverged at depth {} of {:?}", depth, placement
            );
        }
    }
}
