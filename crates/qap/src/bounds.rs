//! Lower bounds for partial assignments — the QAP bounding operator.
//!
//! Two bound tiers are provided, selected by [`Bound`]:
//!
//! * [`screen_bound`] — the cheap rearrangement screen: exact
//!   placed–placed cost, the cheapest free location per unplaced
//!   facility against the placed ones only, and a single global
//!   rearrangement-inequality product over the pooled remaining flow and
//!   distance multisets. O(u²) per call (u = unplaced count), no
//!   allocation-heavy machinery — the first-level filter.
//! * [`gilmore_lawler_bound`] — the true Gilmore–Lawler bound: for every
//!   (unplaced facility `i`, free location `a`) pair, an admissible cost
//!   `c[i][a]` combining the *exact* interaction with placed facilities
//!   and the rearrangement inner product of `i`'s sorted out-flows
//!   against `a`'s reverse-sorted distances; the assignment-problem
//!   minimum of `c` (via [`crate::lap::solve_lap`]) is the bound. Each
//!   ordered facility pair is counted in exactly one row of `c`, so the
//!   bound is admissible; because the same assignment must pay both the
//!   placed part and the per-row products, it **dominates the screen**
//!   (the screen's two terms are each a further relaxation of the LAP —
//!   a property test pins this).
//!
//! Both bounds take the same partial-state triple the search maintains:
//! `placement[facility] = location` for the placed prefix, the used-
//! location bitmask, and the exact placed–placed cost.

use crate::instance::QapInstance;
use crate::lap::solve_lap;

/// Which bounding tier(s) the search uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Bound {
    /// The rearrangement screen only (cheapest, weakest).
    Screen,
    /// The Gilmore–Lawler assignment bound on every node (strongest,
    /// costliest: one O(u³) LAP solve per evaluation).
    #[default]
    GilmoreLawler,
    /// Tiered: evaluate the screen first and escalate to Gilmore–Lawler
    /// only when the screen fails to prune (via the engine's
    /// cutoff-aware `lower_bound_against` hook) — pruned nodes pay
    /// O(u²), survivors pay the LAP. Equivalent to `GilmoreLawler` in
    /// nodes explored (GL dominates the screen), but only cheaper in
    /// time when the screen's prune rate covers its evaluation cost: on
    /// the Nugent grids it does not (the checked-in `qap` bench shows
    /// GL-only ~1.4× faster end-to-end), so the tier is selectable
    /// rather than the default.
    Tiered,
}

/// The cheap first-level screen (the crate's original bound): exact
/// placed cost, plus the cheapest free location per unplaced facility
/// counting placed interactions only, plus the global rearrangement
/// product of pooled remaining flows against pooled remaining distances.
pub fn screen_bound(instance: &QapInstance, placement: &[u16], used: u64, base_cost: u64) -> u64 {
    let n = instance.n();
    let placed = placement.len();
    let mut bound = base_cost;

    // placed–unplaced: cheapest free location per unplaced facility,
    // counting only interactions with placed facilities.
    for facility in placed..n {
        let mut cheapest = u64::MAX;
        for location in 0..n {
            if used & (1 << location) != 0 {
                continue;
            }
            let mut here = 0;
            for (other, &loc) in placement.iter().enumerate() {
                here += instance.flow(other, facility) * instance.dist(loc as usize, location)
                    + instance.flow(facility, other) * instance.dist(location, loc as usize);
            }
            cheapest = cheapest.min(here);
        }
        if cheapest != u64::MAX {
            bound += cheapest;
        }
    }

    // unplaced–unplaced: rearrangement bound over the pooled remaining
    // flow and distance multisets.
    let mut flows: Vec<u64> = Vec::new();
    for i in placed..n {
        for j in placed..n {
            if i != j {
                flows.push(instance.flow(i, j));
            }
        }
    }
    let mut dists: Vec<u64> = Vec::new();
    for a in 0..n {
        if used & (1 << a) != 0 {
            continue;
        }
        for b in 0..n {
            if b != a && used & (1 << b) == 0 {
                dists.push(instance.dist(a, b));
            }
        }
    }
    flows.sort_unstable();
    dists.sort_unstable_by(|x, y| y.cmp(x));
    bound + flows.iter().zip(&dists).map(|(f, d)| f * d).sum::<u64>()
}

/// The Gilmore–Lawler bound for a partial assignment.
///
/// With unplaced facilities `U` and free locations `L` (`|U| = |L| =
/// u`), builds the `u × u` matrix
///
/// `c[i][a] = flow(i,i)·dist(a,a)                        (diagonal, exact)`
/// `        + Σ_{k placed} flow(k,i)·dist(π(k),a) + flow(i,k)·dist(a,π(k))`
/// `        + ⟨sort↑(flow(i,·) over U∖{i}), sort↓(dist(a,·) over L∖{a})⟩`
///
/// and returns `base_cost + LAP(c)`. Admissibility: for any completion
/// placing `i` at `a`, row `i`'s true contribution — all ordered pairs
/// `(i, j)` with `j ∈ U∖{i}` plus both directions of every placed pair
/// — is at least `c[i][a]` (the placed part is exact; the unplaced part
/// is minorized by the rearrangement inequality); every ordered pair of
/// facilities is charged to exactly one row, so summing rows never
/// double-counts, and minimizing over all assignments (the LAP) can
/// only go lower.
pub fn gilmore_lawler_bound(
    instance: &QapInstance,
    placement: &[u16],
    used: u64,
    base_cost: u64,
) -> u64 {
    let n = instance.n();
    let placed = placement.len();
    if placed == n {
        return base_cost;
    }
    // Sorted out-flow rows (ascending), one per unplaced facility —
    // the reference (re-sorting) construction of what [`GlRowCache`]
    // precomputes; a property test pins the two bounds identical.
    let mut flow_rows: Vec<Vec<u64>> = Vec::with_capacity(n - placed);
    for i in placed..n {
        let mut row: Vec<u64> = (placed..n)
            .filter(|&j| j != i)
            .map(|j| instance.flow(i, j))
            .collect();
        row.sort_unstable();
        flow_rows.push(row);
    }
    gl_with_rows(instance, placement, used, base_cost, &flow_rows)
}

/// Per-depth, per-facility ascending-sorted out-flow rows, computed
/// **once** per instance ([`GlRowCache::new`]) and reused by every
/// Gilmore–Lawler evaluation — instead of re-sorting the same flow
/// rows at every node of the search.
///
/// The cache keys on the search's placement convention: facility `d`
/// is placed at depth `d`, so the unplaced set at depth `d` is always
/// the suffix `d..n` and the row a GL evaluation needs for facility
/// `i ≥ d` is `sort↑(flow(i, ·) over (d..n) ∖ {i})` — a pure function
/// of `(d, i)`. For `n ≤ 24` the whole table is ≤ ~106 KiB.
#[derive(Clone, Debug)]
pub struct GlRowCache {
    /// `rows[d][i - d]` = the sorted out-flow row of facility `i` at
    /// depth `d` (length `n - d - 1`).
    rows: Vec<Vec<Vec<u64>>>,
}

impl GlRowCache {
    /// Precomputes every depth's rows for `instance`.
    pub fn new(instance: &QapInstance) -> Self {
        let n = instance.n();
        let rows = (0..n)
            .map(|d| {
                (d..n)
                    .map(|i| {
                        let mut row: Vec<u64> = (d..n)
                            .filter(|&j| j != i)
                            .map(|j| instance.flow(i, j))
                            .collect();
                        row.sort_unstable();
                        row
                    })
                    .collect()
            })
            .collect();
        GlRowCache { rows }
    }
}

/// [`gilmore_lawler_bound`] drawing its sorted out-flow rows from a
/// [`GlRowCache`] instead of re-sorting them — identical values
/// (property-tested), O(u² log u) less sorting per node. `placement`
/// must follow the cache's convention: facility `d` placed at depth
/// `d` (the search's invariant).
pub fn gilmore_lawler_bound_cached(
    instance: &QapInstance,
    cache: &GlRowCache,
    placement: &[u16],
    used: u64,
    base_cost: u64,
) -> u64 {
    let placed = placement.len();
    if placed == instance.n() {
        return base_cost;
    }
    // The cached rows go in borrowed as-is: no per-node adapter
    // allocation on the search's hottest path.
    gl_with_rows(instance, placement, used, base_cost, &cache.rows[placed])
}

/// The shared Gilmore–Lawler core: distance rows, the per-pair cost
/// matrix and the LAP solve, over caller-provided sorted out-flow rows
/// (`flow_rows[k]` belongs to unplaced facility `placed + k`).
fn gl_with_rows<R: AsRef<[u64]>>(
    instance: &QapInstance,
    placement: &[u16],
    used: u64,
    base_cost: u64,
    flow_rows: &[R],
) -> u64 {
    let n = instance.n();
    let placed = placement.len();
    let u = n - placed;
    debug_assert_eq!(flow_rows.len(), u);
    let free: Vec<usize> = (0..n).filter(|l| used & (1 << l) == 0).collect();
    debug_assert_eq!(free.len(), u);

    // Sorted distance rows (descending), one per free location. These
    // depend on the free-location *subset* (2ⁿ possibilities), so they
    // are rebuilt per node — the out-flow rows were the cacheable half.
    let mut dist_rows: Vec<Vec<u64>> = Vec::with_capacity(u);
    for &a in &free {
        let mut row: Vec<u64> = free
            .iter()
            .filter(|&&b| b != a)
            .map(|&b| instance.dist(a, b))
            .collect();
        row.sort_unstable_by(|x, y| y.cmp(x));
        dist_rows.push(row);
    }

    let mut cost = vec![0u64; u * u];
    for (ii, i) in (placed..n).enumerate() {
        for (aa, &a) in free.iter().enumerate() {
            let mut c = instance.flow(i, i) * instance.dist(a, a);
            for (k, &loc) in placement.iter().enumerate() {
                c += instance.flow(k, i) * instance.dist(loc as usize, a)
                    + instance.flow(i, k) * instance.dist(a, loc as usize);
            }
            c += flow_rows[ii]
                .as_ref()
                .iter()
                .zip(&dist_rows[aa])
                .map(|(f, d)| f * d)
                .sum::<u64>();
            cost[ii * u + aa] = c;
        }
    }
    base_cost + solve_lap(u, &cost).total
}

/// Shared screen context for a pool of sibling children: everything in
/// [`screen_bound`] that depends only on the *parent* — the placed-part
/// interaction matrix of every unplaced facility at every candidate
/// location, the pooled flow multiset (already sorted), and the pooled
/// distance-pair list over the parent's free locations (already sorted,
/// with endpoints kept so a child can skip the pairs its own location
/// consumes) — computed once per pool.
///
/// A child evaluation is then O(u·F + F²) with **no allocation and no
/// sorting** (u unplaced facilities, F parent-free locations), against
/// the scalar screen's O(u·F·placed + F² log F) — the screen becomes
/// cheap enough to be worth running on every pool entry before deciding
/// which entries pay for Gilmore–Lawler.
pub struct ScreenPool {
    n: usize,
    /// Children's placement length (parent prefix + 1).
    placed_next: usize,
    /// The parent's free locations (each child's own location plus its
    /// free set).
    free: Vec<usize>,
    /// `here[fi · F + ai]` = interaction of unplaced facility
    /// `placed_next + fi` at `free[ai]` with the parent prefix.
    here: Vec<u64>,
    /// Ascending flows over ordered unplaced-facility pairs.
    flows: Vec<u64>,
    /// Descending `(dist, a, b)` over ordered parent-free location pairs.
    dist_pairs: Vec<(u64, u32, u32)>,
}

impl ScreenPool {
    /// Builds the context below a parent `prefix` (facility `d` at
    /// `prefix[d]`) whose used-location mask is `parent_used`.
    pub fn new(instance: &QapInstance, prefix: &[u16], parent_used: u64) -> Self {
        let n = instance.n();
        let placed_next = prefix.len() + 1;
        let free: Vec<usize> = (0..n).filter(|l| parent_used & (1 << l) == 0).collect();
        let fcount = free.len();
        let mut here = vec![0u64; (n - placed_next) * fcount];
        for (fi, f) in (placed_next..n).enumerate() {
            for (ai, &loc) in free.iter().enumerate() {
                let mut h = 0;
                for (k, &pl) in prefix.iter().enumerate() {
                    h += instance.flow(k, f) * instance.dist(pl as usize, loc)
                        + instance.flow(f, k) * instance.dist(loc, pl as usize);
                }
                here[fi * fcount + ai] = h;
            }
        }
        let mut flows: Vec<u64> = Vec::new();
        for i in placed_next..n {
            for j in placed_next..n {
                if i != j {
                    flows.push(instance.flow(i, j));
                }
            }
        }
        flows.sort_unstable();
        let mut dist_pairs: Vec<(u64, u32, u32)> = Vec::with_capacity(fcount * fcount);
        for &a in &free {
            for &b in &free {
                if a != b {
                    dist_pairs.push((instance.dist(a, b), a as u32, b as u32));
                }
            }
        }
        dist_pairs.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
        ScreenPool {
            n,
            placed_next,
            free,
            here,
            flows,
            dist_pairs,
        }
    }

    /// The screen bound of the child that placed the next facility at
    /// `location` and whose exact placed–placed cost is `child_cost` —
    /// exactly `screen_bound` of that child state.
    pub fn bound(&self, instance: &QapInstance, location: usize, child_cost: u64) -> u64 {
        let fcount = self.free.len();
        let facility = self.placed_next - 1;
        let mut bound = child_cost;
        // placed–unplaced: the parent part is looked up; only the one
        // new placed facility contributes a fresh term.
        for (fi, f) in (self.placed_next..self.n).enumerate() {
            let mut cheapest = u64::MAX;
            for (ai, &loc) in self.free.iter().enumerate() {
                if loc == location {
                    continue;
                }
                let h = self.here[fi * fcount + ai]
                    + instance.flow(facility, f) * instance.dist(location, loc)
                    + instance.flow(f, facility) * instance.dist(loc, location);
                cheapest = cheapest.min(h);
            }
            if cheapest != u64::MAX {
                bound += cheapest;
            }
        }
        // unplaced–unplaced rearrangement: walk the pre-sorted distance
        // pairs, skipping those that touch the child's own location.
        let mut sum = 0u64;
        let mut fi = 0usize;
        for &(d, a, b) in &self.dist_pairs {
            if fi >= self.flows.len() {
                break;
            }
            if a as usize == location || b as usize == location {
                continue;
            }
            sum += self.flows[fi] * d;
            fi += 1;
        }
        bound + sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recomputes the (partial) placed–placed cost from scratch.
    fn placed_cost(instance: &QapInstance, placement: &[u16]) -> u64 {
        let mut total = 0;
        for (i, &a) in placement.iter().enumerate() {
            for (j, &b) in placement.iter().enumerate() {
                total += instance.flow(i, j) * instance.dist(a as usize, b as usize);
            }
        }
        total
    }

    /// Best completion cost of a partial placement, by brute force.
    fn best_completion(instance: &QapInstance, placement: &[u16]) -> u64 {
        let n = instance.n();
        let free: Vec<usize> = (0..n)
            .filter(|l| !placement.iter().any(|&p| p as usize == *l))
            .collect();
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() {
                visit(items);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        let mut rest = free;
        let mut best = u64::MAX;
        permute(&mut rest, 0, &mut |tail| {
            let full: Vec<usize> = placement
                .iter()
                .map(|&p| p as usize)
                .chain(tail.iter().copied())
                .collect();
            best = best.min(instance.cost(&full));
        });
        best
    }

    fn used_of(placement: &[u16]) -> u64 {
        placement.iter().fold(0u64, |m, &p| m | (1 << p))
    }

    #[test]
    fn both_bounds_admissible_at_all_prefixes_of_a_small_instance() {
        let inst = QapInstance::nugent_style(2, 3, 11);
        let prefixes: Vec<Vec<u16>> = vec![
            vec![],
            vec![2],
            vec![0, 3],
            vec![5, 1, 4],
            vec![1, 2, 3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ];
        for placement in prefixes {
            let used = used_of(&placement);
            let base = placed_cost(&inst, &placement);
            let exact = best_completion(&inst, &placement);
            let screen = screen_bound(&inst, &placement, used, base);
            let gl = gilmore_lawler_bound(&inst, &placement, used, base);
            assert!(screen <= exact, "screen {screen} > exact {exact}");
            assert!(gl <= exact, "GL {gl} > exact {exact} at {placement:?}");
            assert!(gl >= screen, "GL {gl} below screen {screen}");
        }
    }

    #[test]
    fn gl_complete_placement_is_exact_base() {
        let inst = QapInstance::random(5, 3);
        let placement: Vec<u16> = vec![3, 1, 4, 0, 2];
        let base = placed_cost(&inst, &placement);
        assert_eq!(
            gilmore_lawler_bound(&inst, &placement, used_of(&placement), base),
            base
        );
    }

    #[test]
    fn gl_at_root_is_strictly_stronger_on_a_structured_instance() {
        // On grid instances the pooled rearrangement loses the row
        // structure, so GL should beat the screen at the root.
        let inst = QapInstance::nugent_style(3, 3, 5);
        let screen = screen_bound(&inst, &[], 0, 0);
        let gl = gilmore_lawler_bound(&inst, &[], 0, 0);
        assert!(
            gl > screen,
            "expected a strict GL win at the root (screen {screen}, GL {gl})"
        );
        assert!(gl <= inst.brute_optimum());
    }

    #[test]
    fn gl_handles_asymmetric_flows() {
        // flow(0→1)=7, flow(1→0)=1, flow(0→2)=2 — per-row out-flow
        // accounting must keep the bound admissible.
        let flow = vec![0, 7, 2, 1, 0, 0, 0, 3, 0];
        let dist = vec![0, 1, 2, 1, 0, 1, 2, 1, 0];
        let inst = QapInstance::new(3, flow, dist);
        let gl = gilmore_lawler_bound(&inst, &[], 0, 0);
        assert!(gl <= inst.brute_optimum());
        let screen = screen_bound(&inst, &[], 0, 0);
        assert!(gl >= screen);
    }

    #[test]
    fn default_bound_is_gilmore_lawler() {
        assert_eq!(Bound::default(), Bound::GilmoreLawler);
    }

    #[test]
    fn screen_pool_matches_scalar_screen_exactly() {
        // Every (parent prefix, child location): the pooled screen must
        // reproduce `screen_bound` bit-for-bit, because in `Screen` mode
        // its values are the bound.
        let inst = QapInstance::nugent_style(2, 3, 7);
        let n = inst.n();
        let prefixes: Vec<Vec<u16>> = vec![
            vec![],
            vec![4],
            vec![2, 5],
            vec![1, 0, 3],
            vec![3, 4, 1, 5, 0],
        ];
        for prefix in prefixes {
            let parent_used = used_of(&prefix);
            let parent_cost = placed_cost(&inst, &prefix);
            let pool = ScreenPool::new(&inst, &prefix, parent_used);
            for loc in 0..n {
                if parent_used & (1 << loc) != 0 {
                    continue;
                }
                let mut child = prefix.clone();
                child.push(loc as u16);
                let child_used = parent_used | (1 << loc);
                let child_cost = placed_cost(&inst, &child);
                assert_eq!(
                    pool.bound(&inst, loc, child_cost),
                    screen_bound(&inst, &child, child_used, child_cost),
                    "screen pool mismatch at {prefix:?} + {loc}"
                );
                let _ = parent_cost;
            }
        }
    }
}
