//! Upper-bound heuristics: a greedy constructive placement plus a
//! pairwise-exchange local search — the QAP counterpart of the flowshop
//! crate's NEH + iterated greedy, supplying the initial upper bound the
//! campaign's exact runs start from (the paper seeded Ta056 with the
//! iterated-greedy 3681).

use crate::instance::QapInstance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Multi-start parameters for [`greedy_upper_bound`].
#[derive(Clone, Debug)]
pub struct GreedyParams {
    /// Number of restarts (restart 0 uses the deterministic flow-order
    /// construction; later restarts shuffle the facility order).
    pub restarts: u32,
    /// RNG seed for the shuffled restarts.
    pub seed: u64,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams {
            restarts: 16,
            seed: 0x9A7,
        }
    }
}

/// Greedy constructive placement: facilities in the given order, each
/// assigned the free location minimizing its interaction cost with the
/// facilities already placed (ties broken toward the location with the
/// smallest total distance, then the lowest index, so construction is
/// deterministic). Returns `(placement, cost)` with
/// `placement[facility] = location`.
pub fn greedy_construct_in_order(instance: &QapInstance, order: &[usize]) -> (Vec<usize>, u64) {
    let n = instance.n();
    debug_assert_eq!(order.len(), n);
    let centrality: Vec<u64> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| instance.dist(a, b) + instance.dist(b, a))
                .sum()
        })
        .collect();
    let mut placement = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for &facility in order {
        let mut best: Option<(u64, u64, usize)> = None;
        for (location, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let mut here = instance.flow(facility, facility) * instance.dist(location, location);
            for (other, &loc) in placement.iter().enumerate() {
                if loc == usize::MAX {
                    continue;
                }
                here += instance.flow(other, facility) * instance.dist(loc, location)
                    + instance.flow(facility, other) * instance.dist(location, loc);
            }
            let key = (here, centrality[location], location);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, location) = best.expect("a free location always remains");
        placement[facility] = location;
        used[location] = true;
    }
    let cost = instance.cost(&placement);
    (placement, cost)
}

/// Deterministic greedy construction: facilities ordered by decreasing
/// total flow (the busiest facility claims the most central cheap spot
/// first), then [`greedy_construct_in_order`].
pub fn greedy_construct(instance: &QapInstance) -> (Vec<usize>, u64) {
    let n = instance.n();
    let mut order: Vec<usize> = (0..n).collect();
    let total_flow = |i: usize| -> u64 {
        (0..n)
            .map(|j| instance.flow(i, j) + instance.flow(j, i))
            .sum()
    };
    order.sort_by_key(|&i| (std::cmp::Reverse(total_flow(i)), i));
    greedy_construct_in_order(instance, &order)
}

/// Pairwise-exchange local search: repeatedly swaps the locations of
/// the best improving facility pair (steepest descent, O(n) delta per
/// pair) until no swap improves. Mutates `placement` in place and
/// returns the final cost.
pub fn pairwise_exchange(instance: &QapInstance, placement: &mut [usize]) -> u64 {
    let n = instance.n();
    let mut cost = instance.cost(placement);
    loop {
        let mut best: Option<(i128, usize, usize)> = None;
        for x in 0..n {
            for y in x + 1..n {
                let delta = swap_delta(instance, placement, x, y);
                if delta < 0 && best.is_none_or(|(d, _, _)| delta < d) {
                    best = Some((delta, x, y));
                }
            }
        }
        let Some((delta, x, y)) = best else {
            return cost;
        };
        placement.swap(x, y);
        cost = (cost as i128 + delta) as u64;
        debug_assert_eq!(cost, instance.cost(placement));
    }
}

/// Exact cost change of swapping the locations of facilities `x` and
/// `y` in `placement`, in O(n).
fn swap_delta(instance: &QapInstance, placement: &[usize], x: usize, y: usize) -> i128 {
    let (a, b) = (placement[x], placement[y]);
    if a == b {
        return 0;
    }
    let d = |p: usize, q: usize| instance.dist(p, q) as i128;
    let f = |i: usize, j: usize| instance.flow(i, j) as i128;
    let mut delta = 0i128;
    for (k, &loc) in placement.iter().enumerate() {
        if k == x || k == y {
            continue;
        }
        delta += f(x, k) * (d(b, loc) - d(a, loc)) + f(k, x) * (d(loc, b) - d(loc, a));
        delta += f(y, k) * (d(a, loc) - d(b, loc)) + f(k, y) * (d(loc, a) - d(loc, b));
    }
    delta += f(x, y) * (d(b, a) - d(a, b)) + f(y, x) * (d(a, b) - d(b, a));
    delta += f(x, x) * (d(b, b) - d(a, a)) + f(y, y) * (d(a, a) - d(b, b));
    delta
}

/// Multi-start greedy + exchange: the campaign's upper-bound pipeline.
/// Returns the best `(placement, cost)` over all restarts.
pub fn greedy_upper_bound(instance: &QapInstance, params: &GreedyParams) -> (Vec<usize>, u64) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let (mut best, mut best_cost) = {
        let (mut placement, _) = greedy_construct(instance);
        let cost = pairwise_exchange(instance, &mut placement);
        (placement, cost)
    };
    let mut order: Vec<usize> = (0..instance.n()).collect();
    for _ in 1..params.restarts.max(1) {
        order.shuffle(&mut rng);
        let (mut placement, _) = greedy_construct_in_order(instance, &order);
        let cost = pairwise_exchange(instance, &mut placement);
        if cost < best_cost {
            best = placement;
            best_cost = cost;
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_permutation(placement: &[usize], n: usize) {
        let mut sorted = placement.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn construct_yields_valid_placement() {
        let inst = QapInstance::nugent_style(3, 3, 42);
        let (placement, cost) = greedy_construct(&inst);
        assert_is_permutation(&placement, 9);
        assert_eq!(cost, inst.cost(&placement));
    }

    #[test]
    fn exchange_never_worsens_and_reaches_a_local_optimum() {
        let inst = QapInstance::random(8, 17);
        let (mut placement, greedy_cost) = greedy_construct(&inst);
        let cost = pairwise_exchange(&inst, &mut placement);
        assert!(cost <= greedy_cost);
        assert_is_permutation(&placement, 8);
        // Local optimality: no single swap improves.
        for x in 0..8 {
            for y in x + 1..8 {
                assert!(swap_delta(&inst, &placement, x, y) >= 0);
            }
        }
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        let inst = QapInstance::random(7, 4);
        let placement: Vec<usize> = vec![3, 0, 6, 2, 5, 1, 4];
        for x in 0..7 {
            for y in x + 1..7 {
                let mut swapped = placement.clone();
                swapped.swap(x, y);
                let expected = inst.cost(&swapped) as i128 - inst.cost(&placement) as i128;
                assert_eq!(swap_delta(&inst, &placement, x, y), expected, "({x},{y})");
            }
        }
    }

    #[test]
    fn upper_bound_bounds_the_optimum_tightly_on_small_instances() {
        for seed in [1u64, 9, 23] {
            let inst = QapInstance::nugent_style(2, 4, seed);
            let (placement, cost) = greedy_upper_bound(&inst, &GreedyParams::default());
            assert_is_permutation(&placement, 8);
            let optimum = inst.brute_optimum();
            assert!(cost >= optimum);
            // Greedy+exchange is strong at this size: allow 10% excess.
            assert!(
                cost as f64 <= optimum as f64 * 1.10,
                "UB {cost} too far from optimum {optimum} (seed {seed})"
            );
        }
    }

    #[test]
    fn upper_bound_is_deterministic() {
        let inst = QapInstance::nugent_style(3, 3, 77);
        let params = GreedyParams::default();
        assert_eq!(
            greedy_upper_bound(&inst, &params),
            greedy_upper_bound(&inst, &params)
        );
    }
}
