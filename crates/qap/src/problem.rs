//! The `Problem` implementation binding the QAP substrate to the
//! interval-coded search tree: depth `d` of the permutation tree assigns
//! facility `d` to the `rank`-th still-free location.

use crate::bounds::{gilmore_lawler_bound_cached, screen_bound, Bound, GlRowCache, ScreenPool};
use crate::instance::QapInstance;
use gridbnb_coding::TreeShape;
use gridbnb_engine::Problem;

/// The QAP as a [`Problem`] with a selectable bounding tier.
#[derive(Clone, Debug)]
pub struct QapProblem {
    instance: QapInstance,
    bound: Bound,
    /// Per-depth sorted out-flow rows, precomputed once so no GL
    /// evaluation ever re-sorts a flow row (the search places facility
    /// `d` at depth `d`, which is exactly the cache's convention).
    gl_rows: GlRowCache,
}

/// Search state: partial placement and running interaction cost.
#[derive(Clone, Debug)]
pub struct QapState {
    /// `placement[i]` for facilities `i < depth`.
    placement: Vec<u16>,
    /// Bitmask of used locations.
    used: u64,
    /// Exact cost of placed–placed interactions.
    cost: u64,
}

impl QapProblem {
    /// Binds an instance with the given bounding tier.
    pub fn new(instance: QapInstance, bound: Bound) -> Self {
        let gl_rows = GlRowCache::new(&instance);
        QapProblem {
            instance,
            bound,
            gl_rows,
        }
    }

    /// Binds with the default (Gilmore–Lawler) bound.
    pub fn with_default_bound(instance: QapInstance) -> Self {
        QapProblem::new(instance, Bound::default())
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &QapInstance {
        &self.instance
    }

    /// The bounding tier in use.
    pub fn bound_mode(&self) -> Bound {
        self.bound
    }

    /// Decodes engine ranks into a placement vector.
    pub fn decode_ranks(&self, ranks: &[u64]) -> Vec<usize> {
        let mut used = 0u64;
        ranks
            .iter()
            .map(|&r| {
                let loc = nth_free(self.instance.n(), used, r);
                used |= 1 << loc;
                loc
            })
            .collect()
    }

    /// Encodes a placement into branch ranks — the inverse of
    /// [`QapProblem::decode_ranks`]. Useful to locate a heuristic
    /// solution (e.g. the greedy upper bound) in the tree.
    ///
    /// # Panics
    ///
    /// Panics if `placement` is not a permutation of `0..n`.
    pub fn encode_placement(&self, placement: &[usize]) -> Vec<u64> {
        let n = self.instance.n();
        assert_eq!(placement.len(), n, "not a permutation");
        let mut used = 0u64;
        placement
            .iter()
            .map(|&loc| {
                assert!(loc < n && used & (1 << loc) == 0, "not a permutation");
                let rank = (0..loc).filter(|l| used & (1 << l) == 0).count() as u64;
                used |= 1 << loc;
                rank
            })
            .collect()
    }
}

fn nth_free(n: usize, used: u64, rank: u64) -> usize {
    let mut seen = 0;
    for l in 0..n {
        if used & (1 << l) == 0 {
            if seen == rank {
                return l;
            }
            seen += 1;
        }
    }
    unreachable!("rank exceeds free location count")
}

impl Problem for QapProblem {
    type State = QapState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.instance.n())
    }

    fn root_state(&self) -> QapState {
        QapState {
            placement: Vec::new(),
            used: 0,
            cost: 0,
        }
    }

    fn branch(&self, state: &QapState, rank: u64) -> QapState {
        let n = self.instance.n();
        let facility = state.placement.len();
        let location = nth_free(n, state.used, rank);
        let mut cost = state.cost
            + self.instance.flow(facility, facility) * self.instance.dist(location, location);
        for (other, &loc) in state.placement.iter().enumerate() {
            // Both directions of the (symmetric or not) flow matrix.
            cost += self.instance.flow(other, facility)
                * self.instance.dist(loc as usize, location)
                + self.instance.flow(facility, other) * self.instance.dist(location, loc as usize);
        }
        let mut placement = state.placement.clone();
        placement.push(location as u16);
        QapState {
            placement,
            used: state.used | (1 << location),
            cost,
        }
    }

    fn lower_bound(&self, state: &QapState) -> u64 {
        match self.bound {
            Bound::Screen => screen_bound(&self.instance, &state.placement, state.used, state.cost),
            // Without a cutoff there is nothing to screen against, so
            // the tiered bound degenerates to its strongest tier.
            Bound::GilmoreLawler | Bound::Tiered => gilmore_lawler_bound_cached(
                &self.instance,
                &self.gl_rows,
                &state.placement,
                state.used,
                state.cost,
            ),
        }
    }

    fn lower_bound_against(&self, state: &QapState, cutoff: u64) -> u64 {
        match self.bound {
            Bound::Screen => screen_bound(&self.instance, &state.placement, state.used, state.cost),
            Bound::GilmoreLawler => gilmore_lawler_bound_cached(
                &self.instance,
                &self.gl_rows,
                &state.placement,
                state.used,
                state.cost,
            ),
            Bound::Tiered => {
                let screen = screen_bound(&self.instance, &state.placement, state.used, state.cost);
                if screen >= cutoff {
                    // The cheap tier already eliminates the subtree.
                    return screen;
                }
                gilmore_lawler_bound_cached(
                    &self.instance,
                    &self.gl_rows,
                    &state.placement,
                    state.used,
                    state.cost,
                )
            }
        }
    }

    /// Screen-first pool kernel. When the pool is a sibling pool (every
    /// placement is one shared parent prefix plus a distinct last
    /// location, which is how the pooled explorer builds them), the
    /// parent-level screen context — placed-part interaction matrix,
    /// sorted flow and distance-pair multisets — is built once and the
    /// cheap screen runs allocation-free over the whole pool; the
    /// Gilmore–Lawler LAP (with its cached rows) is paid only by the
    /// survivors. Because GL dominates the screen, children the screen
    /// eliminates stay eliminated under every future (lower) cutoff, so
    /// elimination decisions match the scalar operator exactly — this is
    /// the tiered idea again, but with the screen's cost amortized at
    /// pool level instead of charged per node.
    fn lower_bound_batch(&self, states: &[QapState], cutoff: u64, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(states.len());
        let siblings = states.split_first().and_then(|(first, rest)| {
            let len = first.placement.len();
            if len == 0 {
                return None;
            }
            let prefix = &first.placement[..len - 1];
            let parent_used = first.used & !(1 << first.placement[len - 1]);
            let ok = rest.iter().all(|s| {
                s.placement.len() == len
                    && &s.placement[..len - 1] == prefix
                    && s.used == parent_used | (1 << s.placement[len - 1])
            });
            ok.then_some((prefix, parent_used))
        });
        let Some((prefix, parent_used)) = siblings else {
            for s in states {
                out.push(self.lower_bound_against(s, cutoff));
            }
            return;
        };
        let pool = ScreenPool::new(&self.instance, prefix, parent_used);
        for s in states {
            let location = *s.placement.last().expect("validated non-empty") as usize;
            out.push(pool.bound(&self.instance, location, s.cost));
        }
        if matches!(self.bound, Bound::Screen) {
            return;
        }
        for (i, s) in states.iter().enumerate() {
            if out[i] >= cutoff {
                continue; // the screen already eliminates this child
            }
            out[i] = gilmore_lawler_bound_cached(
                &self.instance,
                &self.gl_rows,
                &s.placement,
                s.used,
                s.cost,
            );
        }
    }

    fn leaf_cost(&self, state: &QapState) -> u64 {
        debug_assert_eq!(state.placement.len(), self.instance.n());
        state.cost
    }
}
