//! Quadratic assignment on a permutation tree — the third `Problem`
//! implementation.
//!
//! The paper's Table 3 lists Nug30, the milestone QAP resolution of
//! Anstreicher et al. on a computational grid, directly above and below
//! the TSP records. This crate shows the interval-coded machinery
//! solving (small) QAPs unchanged: depth `d` of the tree assigns
//! facility `d` to the `rank`-th still-free location.
//!
//! The objective is `Σ_{i,j} flow(i,j) · dist(π(i), π(j))`. The lower
//! bound decomposes the cost into three admissible parts:
//!
//! * placed–placed interactions — exact;
//! * placed–unplaced — for each unplaced facility, the cheapest free
//!   location with respect to the placed ones only (ignoring conflicts
//!   can only under-count);
//! * unplaced–unplaced — the rearrangement-inequality bound: ascending
//!   remaining flows dotted with descending remaining distances
//!   (Gilmore–Lawler's outer bound).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gridbnb_coding::TreeShape;
use gridbnb_engine::Problem;

/// A QAP instance: `n` facilities to place on `n` locations.
#[derive(Clone, Debug)]
pub struct QapInstance {
    n: usize,
    /// `flow[i * n + j]`: traffic between facilities `i` and `j`.
    flow: Vec<u64>,
    /// `dist[a * n + b]`: distance between locations `a` and `b`.
    dist: Vec<u64>,
}

impl QapInstance {
    /// Builds an instance from row-major flow and distance matrices.
    ///
    /// # Panics
    ///
    /// Panics unless both matrices are `n × n` with `2 ≤ n ≤ 24`.
    pub fn new(n: usize, flow: Vec<u64>, dist: Vec<u64>) -> Self {
        assert!((2..=24).contains(&n), "2 ≤ n ≤ 24 facilities");
        assert_eq!(flow.len(), n * n, "flow shape");
        assert_eq!(dist.len(), n * n, "distance shape");
        QapInstance { n, flow, dist }
    }

    /// A deterministic pseudo-random instance (SplitMix64): flows in
    /// `0..10`, locations on a line (distance = index gap), the classic
    /// easy-to-state hard-to-solve family.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut flow = vec![0u64; n * n];
        for i in 0..n {
            for j in 0..i {
                let f = next() % 10;
                flow[i * n + j] = f;
                flow[j * n + i] = f;
            }
        }
        let mut dist = vec![0u64; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = (a as i64 - b as i64).unsigned_abs();
            }
        }
        QapInstance::new(n, flow, dist)
    }

    /// Number of facilities (= locations).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flow between two facilities.
    #[inline]
    pub fn flow(&self, i: usize, j: usize) -> u64 {
        self.flow[i * self.n + j]
    }

    /// Distance between two locations.
    #[inline]
    pub fn dist(&self, a: usize, b: usize) -> u64 {
        self.dist[a * self.n + b]
    }

    /// Cost of a complete assignment (`placement[facility] = location`).
    pub fn cost(&self, placement: &[usize]) -> u64 {
        let mut total = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                total += self.flow(i, j) * self.dist(placement[i], placement[j]);
            }
        }
        total
    }

    /// Brute-force optimum (`n ≤ 9`).
    pub fn brute_optimum(&self) -> u64 {
        assert!(self.n <= 9, "brute force needs a small instance");
        let mut locs: Vec<usize> = (0..self.n).collect();
        let mut best = u64::MAX;
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() {
                visit(items);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        permute(&mut locs, 0, &mut |p| best = best.min(self.cost(p)));
        best
    }
}

/// The QAP as a [`Problem`].
#[derive(Clone, Debug)]
pub struct QapProblem {
    instance: QapInstance,
}

/// Search state: partial placement and running interaction cost.
#[derive(Clone, Debug)]
pub struct QapState {
    /// `placement[i]` for facilities `i < depth`.
    placement: Vec<u16>,
    /// Bitmask of used locations.
    used: u64,
    /// Exact cost of placed–placed interactions.
    cost: u64,
}

impl QapProblem {
    /// Wraps an instance.
    pub fn new(instance: QapInstance) -> Self {
        QapProblem { instance }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &QapInstance {
        &self.instance
    }

    /// Decodes engine ranks into a placement vector.
    pub fn decode_ranks(&self, ranks: &[u64]) -> Vec<usize> {
        let mut used = 0u64;
        ranks
            .iter()
            .map(|&r| {
                let loc = nth_free(self.instance.n, used, r);
                used |= 1 << loc;
                loc
            })
            .collect()
    }
}

fn nth_free(n: usize, used: u64, rank: u64) -> usize {
    let mut seen = 0;
    for l in 0..n {
        if used & (1 << l) == 0 {
            if seen == rank {
                return l;
            }
            seen += 1;
        }
    }
    unreachable!("rank exceeds free location count")
}

impl Problem for QapProblem {
    type State = QapState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.instance.n)
    }

    fn root_state(&self) -> QapState {
        QapState {
            placement: Vec::new(),
            used: 0,
            cost: 0,
        }
    }

    fn branch(&self, state: &QapState, rank: u64) -> QapState {
        let n = self.instance.n;
        let facility = state.placement.len();
        let location = nth_free(n, state.used, rank);
        let mut cost = state.cost;
        for (other, &loc) in state.placement.iter().enumerate() {
            let d = self.instance.dist(loc as usize, location);
            // Both directions of the (symmetric or not) flow matrix.
            cost += self.instance.flow(other, facility) * d
                + self.instance.flow(facility, other) * self.instance.dist(location, loc as usize);
        }
        let mut placement = state.placement.clone();
        placement.push(location as u16);
        QapState {
            placement,
            used: state.used | (1 << location),
            cost,
        }
    }

    fn lower_bound(&self, state: &QapState) -> u64 {
        let n = self.instance.n;
        let placed = state.placement.len();
        let mut bound = state.cost;

        // placed–unplaced: cheapest free location per unplaced facility,
        // counting only interactions with placed facilities.
        for facility in placed..n {
            let mut cheapest = u64::MAX;
            for location in 0..n {
                if state.used & (1 << location) != 0 {
                    continue;
                }
                let mut here = 0;
                for (other, &loc) in state.placement.iter().enumerate() {
                    here += self.instance.flow(other, facility)
                        * self.instance.dist(loc as usize, location)
                        + self.instance.flow(facility, other)
                            * self.instance.dist(location, loc as usize);
                }
                cheapest = cheapest.min(here);
            }
            if cheapest != u64::MAX {
                bound += cheapest;
            }
        }

        // unplaced–unplaced: rearrangement bound over the remaining
        // flow and distance multisets.
        let mut flows: Vec<u64> = Vec::new();
        for i in placed..n {
            for j in placed..n {
                if i != j {
                    flows.push(self.instance.flow(i, j));
                }
            }
        }
        let mut dists: Vec<u64> = Vec::new();
        for a in 0..n {
            if state.used & (1 << a) != 0 {
                continue;
            }
            for b in 0..n {
                if b != a && state.used & (1 << b) == 0 {
                    dists.push(self.instance.dist(a, b));
                }
            }
        }
        flows.sort_unstable();
        dists.sort_unstable_by(|x, y| y.cmp(x));
        bound + flows.iter().zip(&dists).map(|(f, d)| f * d).sum::<u64>()
    }

    fn leaf_cost(&self, state: &QapState) -> u64 {
        debug_assert_eq!(state.placement.len(), self.instance.n);
        state.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_engine::solve;

    #[test]
    fn identity_placement_cost() {
        // 3 facilities on a line, flow only between 0 and 2.
        let mut flow = vec![0u64; 9];
        flow[2] = 5; // (0, 2)
        flow[2 * 3] = 5; // (2, 0)
        let dist = vec![0, 1, 2, 1, 0, 1, 2, 1, 0];
        let inst = QapInstance::new(3, flow, dist);
        // facilities 0,2 adjacent => cost 2*5*1 ; far apart => 2*5*2.
        assert_eq!(inst.cost(&[0, 2, 1]), 10);
        assert_eq!(inst.cost(&[0, 1, 2]), 20);
        assert_eq!(inst.brute_optimum(), 10);
    }

    #[test]
    fn bnb_matches_brute_force() {
        for seed in 0..6 {
            let inst = QapInstance::random(7, seed);
            let expected = inst.brute_optimum();
            let problem = QapProblem::new(inst);
            let report = solve(&problem, None);
            assert_eq!(report.best_cost, Some(expected), "seed {seed}");
        }
    }

    #[test]
    fn bound_admissible_at_root_and_prunes() {
        let inst = QapInstance::random(8, 3);
        let optimum = {
            let i2 = inst.clone();
            let problem = QapProblem::new(i2);
            solve(&problem, None).best_cost.unwrap()
        };
        let problem = QapProblem::new(inst);
        assert!(problem.lower_bound(&problem.root_state()) <= optimum);
        let report = solve(&problem, None);
        assert!(report.stats.pruned > 0, "bound should prune");
    }

    #[test]
    fn decode_ranks_is_valid_placement() {
        let inst = QapInstance::random(6, 9);
        let problem = QapProblem::new(inst.clone());
        let report = solve(&problem, None);
        let sol = report.best.unwrap();
        let placement = problem.decode_ranks(&sol.leaf_ranks);
        let mut sorted = placement.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        assert_eq!(inst.cost(&placement), sol.cost);
    }

    #[test]
    fn asymmetric_flows_supported() {
        // flow(0→1) = 7, flow(1→0) = 1; dist symmetric.
        let flow = vec![0, 7, 1, 0];
        let dist = vec![0, 2, 2, 0];
        let inst = QapInstance::new(2, flow, dist);
        assert_eq!(inst.cost(&[0, 1]), 16);
        assert_eq!(inst.cost(&[1, 0]), 16);
        let problem = QapProblem::new(inst);
        assert_eq!(solve(&problem, None).best_cost, Some(16));
    }
}
