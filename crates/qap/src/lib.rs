//! Quadratic assignment substrate for the grid-enabled branch and bound
//! — the campaign counterpart of the flowshop crate, proving the
//! interval-coded engine/coordinator/shard stack is problem-agnostic.
//!
//! The paper's Table 3 lists Nug30, the milestone QAP resolution of
//! Anstreicher et al. on a computational grid, directly beside the TSP
//! and flowshop records. This crate provides everything a (laptop-scale)
//! QAP campaign needs from the application side:
//!
//! * [`QapInstance`] — flow/distance matrices with fail-fast validation
//!   ([`QapInstance::try_new`]), plus two generator families: the
//!   Nugent-style rectangular-grid family
//!   ([`QapInstance::nugent_style`]) and the seeded random line family
//!   ([`QapInstance::random`]);
//! * [`lap`] — an O(n³) Hungarian solver for the linear assignment
//!   problem, the engine of the real bound;
//! * [`bounds`] — the bounding tiers: the cheap rearrangement
//!   [`bounds::screen_bound`] and the true Gilmore–Lawler
//!   [`bounds::gilmore_lawler_bound`] (per-pair rearrangement products
//!   fed into the LAP), selected via [`Bound`];
//! * [`greedy`] — greedy constructive placement + pairwise-exchange
//!   local search, the QAP analogue of NEH + iterated greedy, supplying
//!   initial upper bounds;
//! * [`QapProblem`] — the `gridbnb_engine::Problem` implementation
//!   wiring the tiered bounds to the permutation tree (depth `d`
//!   assigns facility `d` to the `rank`-th still-free location).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod greedy;
mod instance;
pub mod lap;
mod problem;

pub use bounds::Bound;
pub use instance::{InstanceError, QapInstance, MAX_N};
pub use problem::{QapProblem, QapState};

pub use gridbnb_engine::{Problem, Solution};

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_engine::solve;

    #[test]
    fn identity_placement_cost() {
        // 3 facilities on a line, flow only between 0 and 2.
        let mut flow = vec![0u64; 9];
        flow[2] = 5; // (0, 2)
        flow[2 * 3] = 5; // (2, 0)
        let dist = vec![0, 1, 2, 1, 0, 1, 2, 1, 0];
        let inst = QapInstance::new(3, flow, dist);
        // facilities 0,2 adjacent => cost 2*5*1 ; far apart => 2*5*2.
        assert_eq!(inst.cost(&[0, 2, 1]), 10);
        assert_eq!(inst.cost(&[0, 1, 2]), 20);
        assert_eq!(inst.brute_optimum(), 10);
    }

    #[test]
    fn bnb_matches_brute_force_under_every_bound_tier() {
        for seed in 0..4 {
            let inst = QapInstance::random(6, seed);
            let expected = inst.brute_optimum();
            for bound in [Bound::Screen, Bound::GilmoreLawler, Bound::Tiered] {
                let problem = QapProblem::new(inst.clone(), bound);
                let report = solve(&problem, None);
                assert_eq!(report.best_cost, Some(expected), "seed {seed} {bound:?}");
            }
        }
    }

    #[test]
    fn bound_admissible_at_root_and_prunes() {
        let inst = QapInstance::random(8, 3);
        let optimum = {
            let problem = QapProblem::with_default_bound(inst.clone());
            solve(&problem, None).best_cost.unwrap()
        };
        let problem = QapProblem::with_default_bound(inst);
        assert!(problem.lower_bound(&problem.root_state()) <= optimum);
        let report = solve(&problem, None);
        assert!(report.stats.pruned > 0, "bound should prune");
    }

    #[test]
    fn gilmore_lawler_explores_fewer_nodes_than_screen() {
        let inst = QapInstance::nugent_style(2, 4, 2);
        let screen = solve(&QapProblem::new(inst.clone(), Bound::Screen), None);
        let gl = solve(&QapProblem::new(inst.clone(), Bound::GilmoreLawler), None);
        let tiered = solve(&QapProblem::new(inst, Bound::Tiered), None);
        assert_eq!(screen.best_cost, gl.best_cost);
        assert_eq!(screen.best_cost, tiered.best_cost);
        assert!(
            gl.stats.explored < screen.stats.explored,
            "GL {} nodes vs screen {} nodes",
            gl.stats.explored,
            screen.stats.explored
        );
        // Tiered prunes exactly like GL (same strongest tier).
        assert_eq!(tiered.stats.explored, gl.stats.explored);
    }

    #[test]
    fn decode_ranks_is_valid_placement() {
        let inst = QapInstance::random(6, 9);
        let problem = QapProblem::with_default_bound(inst.clone());
        let report = solve(&problem, None);
        let sol = report.best.unwrap();
        let placement = problem.decode_ranks(&sol.leaf_ranks);
        let mut sorted = placement.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        assert_eq!(inst.cost(&placement), sol.cost);
    }

    #[test]
    fn encode_placement_inverts_decode() {
        let inst = QapInstance::nugent_style(2, 3, 13);
        let problem = QapProblem::with_default_bound(inst);
        let placement = vec![4usize, 0, 5, 2, 1, 3];
        let ranks = problem.encode_placement(&placement);
        assert_eq!(problem.decode_ranks(&ranks), placement);
        // Ranks must be feasible (rank r at depth d satisfies r < n-d).
        for (d, &r) in ranks.iter().enumerate() {
            assert!(r < (6 - d) as u64);
        }
    }

    #[test]
    fn asymmetric_flows_supported() {
        // flow(0→1) = 7, flow(1→0) = 1; dist symmetric.
        let flow = vec![0, 7, 1, 0];
        let dist = vec![0, 2, 2, 0];
        let inst = QapInstance::new(2, flow, dist);
        assert_eq!(inst.cost(&[0, 1]), 16);
        assert_eq!(inst.cost(&[1, 0]), 16);
        let problem = QapProblem::with_default_bound(inst);
        assert_eq!(solve(&problem, None).best_cost, Some(16));
    }

    #[test]
    fn nonzero_flow_diagonal_is_accounted() {
        // Facility 0 has self-flow 5; locations 0 and 1 have self-dists
        // 2 and 0 — the optimum parks facility 0 on location 1.
        let flow = vec![5, 0, 0, 0];
        let dist = vec![2, 1, 1, 0];
        let inst = QapInstance::new(2, flow, dist);
        assert_eq!(inst.cost(&[0, 1]), 10);
        assert_eq!(inst.cost(&[1, 0]), 0);
        let problem = QapProblem::with_default_bound(inst);
        let report = solve(&problem, None);
        assert_eq!(report.best_cost, Some(0));
    }
}
