//! QAP instances: flow/distance matrices, validation, and the two
//! generator families the campaign tests and benches draw from.

use std::fmt;

/// Largest supported instance (locations are tracked in a `u64` bitmask
/// and permutation trees beyond 24! dwarf anything exactly solvable).
pub const MAX_N: usize = 24;

/// A rejected matrix pair (see [`QapInstance::try_new`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// `n` outside `2 ..= MAX_N`.
    BadSize {
        /// The rejected facility count.
        n: usize,
    },
    /// The flow matrix is not `n × n`.
    FlowShape {
        /// `n * n`.
        expected: usize,
        /// `flow.len()` as passed.
        got: usize,
    },
    /// The distance matrix is not `n × n`.
    DistShape {
        /// `n * n`.
        expected: usize,
        /// `dist.len()` as passed.
        got: usize,
    },
    /// `n² · max_flow · max_dist` overflows `u64`, so assignment costs
    /// (and therefore bounds) could silently wrap during the search.
    CostOverflow,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BadSize { n } => {
                write!(f, "need 2 ≤ n ≤ {MAX_N} facilities (got {n})")
            }
            InstanceError::FlowShape { expected, got } => {
                write!(f, "flow matrix must hold {expected} entries (got {got})")
            }
            InstanceError::DistShape { expected, got } => {
                write!(
                    f,
                    "distance matrix must hold {expected} entries (got {got})"
                )
            }
            InstanceError::CostOverflow => {
                write!(f, "n² · max_flow · max_dist overflows u64 cost arithmetic")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A QAP instance: `n` facilities to place on `n` locations, minimizing
/// `Σ_{i,j} flow(i,j) · dist(π(i), π(j))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QapInstance {
    n: usize,
    /// `flow[i * n + j]`: traffic between facilities `i` and `j`.
    flow: Vec<u64>,
    /// `dist[a * n + b]`: distance between locations `a` and `b`.
    dist: Vec<u64>,
}

impl QapInstance {
    /// Builds an instance from row-major flow and distance matrices,
    /// rejecting malformed input (shape, size, or cost arithmetic that
    /// could overflow `u64` during the search) — the fail-fast
    /// counterpart of [`QapInstance::new`].
    ///
    /// # Errors
    ///
    /// See [`InstanceError`].
    pub fn try_new(n: usize, flow: Vec<u64>, dist: Vec<u64>) -> Result<Self, InstanceError> {
        if !(2..=MAX_N).contains(&n) {
            return Err(InstanceError::BadSize { n });
        }
        if flow.len() != n * n {
            return Err(InstanceError::FlowShape {
                expected: n * n,
                got: flow.len(),
            });
        }
        if dist.len() != n * n {
            return Err(InstanceError::DistShape {
                expected: n * n,
                got: dist.len(),
            });
        }
        let max_flow = flow.iter().copied().max().unwrap_or(0);
        let max_dist = dist.iter().copied().max().unwrap_or(0);
        // Every cost the search computes is a sum of ≤ n² flow·dist
        // products; bounding the worst case keeps all of them exact.
        let worst = (n as u128) * (n as u128) * (max_flow as u128) * (max_dist as u128);
        if worst > u64::MAX as u128 {
            return Err(InstanceError::CostOverflow);
        }
        Ok(QapInstance { n, flow, dist })
    }

    /// Builds an instance from row-major flow and distance matrices.
    ///
    /// # Panics
    ///
    /// Panics where [`QapInstance::try_new`] would return an error.
    pub fn new(n: usize, flow: Vec<u64>, dist: Vec<u64>) -> Self {
        match QapInstance::try_new(n, flow, dist) {
            Ok(instance) => instance,
            Err(e) => panic!("invalid QAP instance: {e}"),
        }
    }

    /// A deterministic pseudo-random instance (SplitMix64): symmetric
    /// flows in `0..10`, locations on a line (distance = index gap), the
    /// classic easy-to-state hard-to-solve family.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut next = splitmix(seed);
        let mut flow = vec![0u64; n * n];
        for i in 0..n {
            for j in 0..i {
                let f = next() % 10;
                flow[i * n + j] = f;
                flow[j * n + i] = f;
            }
        }
        let mut dist = vec![0u64; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = (a as i64 - b as i64).unsigned_abs();
            }
        }
        QapInstance::new(n, flow, dist)
    }

    /// A Nugent-style instance: `rows × cols` locations on a rectangular
    /// grid with rectilinear (Manhattan) distances — the geometry of the
    /// Nugent–Vollmann–Ruml suite whose 30-location member (Nug30) is
    /// the paper's Table 3 QAP milestone — and symmetric integer flows
    /// in `0..10` with a zero diagonal, drawn from SplitMix64 on `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ rows · cols ≤ MAX_N`.
    pub fn nugent_style(rows: usize, cols: usize, seed: u64) -> Self {
        let n = rows * cols;
        let mut next = splitmix(seed ^ 0x4E75_6730); // "Nug0"
        let mut flow = vec![0u64; n * n];
        for i in 0..n {
            for j in 0..i {
                let f = next() % 10;
                flow[i * n + j] = f;
                flow[j * n + i] = f;
            }
        }
        let mut dist = vec![0u64; n * n];
        for a in 0..n {
            for b in 0..n {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                dist[a * n + b] = (ar.abs_diff(br) + ac.abs_diff(bc)) as u64;
            }
        }
        QapInstance::new(n, flow, dist)
    }

    /// Number of facilities (= locations).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flow between two facilities.
    #[inline]
    pub fn flow(&self, i: usize, j: usize) -> u64 {
        self.flow[i * self.n + j]
    }

    /// Distance between two locations.
    #[inline]
    pub fn dist(&self, a: usize, b: usize) -> u64 {
        self.dist[a * self.n + b]
    }

    /// `true` iff the flow matrix is symmetric.
    pub fn flow_symmetric(&self) -> bool {
        (0..self.n).all(|i| (0..i).all(|j| self.flow(i, j) == self.flow(j, i)))
    }

    /// `true` iff the distance matrix is symmetric.
    pub fn dist_symmetric(&self) -> bool {
        (0..self.n).all(|a| (0..a).all(|b| self.dist(a, b) == self.dist(b, a)))
    }

    /// Cost of a complete assignment (`placement[facility] = location`).
    pub fn cost(&self, placement: &[usize]) -> u64 {
        let mut total = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                total += self.flow(i, j) * self.dist(placement[i], placement[j]);
            }
        }
        total
    }

    /// Brute-force optimum (`n ≤ 9`).
    pub fn brute_optimum(&self) -> u64 {
        assert!(self.n <= 9, "brute force needs a small instance");
        let mut locs: Vec<usize> = (0..self.n).collect();
        let mut best = u64::MAX;
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() {
                visit(items);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        permute(&mut locs, 0, &mut |p| best = best.min(self.cost(p)));
        best
    }
}

/// SplitMix64 stream seeded at `seed` — the deterministic source both
/// generator families share.
fn splitmix(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed;
    move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_valid() {
        let inst = QapInstance::try_new(2, vec![0, 1, 1, 0], vec![0, 3, 3, 0]).unwrap();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.cost(&[0, 1]), 6);
    }

    #[test]
    fn try_new_rejects_bad_sizes() {
        assert_eq!(
            QapInstance::try_new(1, vec![0], vec![0]),
            Err(InstanceError::BadSize { n: 1 })
        );
        assert_eq!(
            QapInstance::try_new(25, vec![0; 625], vec![0; 625]),
            Err(InstanceError::BadSize { n: 25 })
        );
    }

    #[test]
    fn try_new_rejects_bad_shapes() {
        assert_eq!(
            QapInstance::try_new(2, vec![0; 3], vec![0; 4]),
            Err(InstanceError::FlowShape {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(
            QapInstance::try_new(2, vec![0; 4], vec![0; 5]),
            Err(InstanceError::DistShape {
                expected: 4,
                got: 5
            })
        );
    }

    #[test]
    fn try_new_rejects_cost_overflow() {
        let huge = u64::MAX / 2;
        assert_eq!(
            QapInstance::try_new(2, vec![0, huge, huge, 0], vec![0, huge, huge, 0]),
            Err(InstanceError::CostOverflow)
        );
    }

    #[test]
    #[should_panic(expected = "invalid QAP instance")]
    fn new_panics_on_invalid() {
        let _ = QapInstance::new(3, vec![0; 8], vec![0; 9]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = QapInstance::try_new(1, vec![], vec![]).unwrap_err();
        assert!(e.to_string().contains("got 1"));
    }

    #[test]
    fn nugent_style_is_a_grid() {
        let inst = QapInstance::nugent_style(3, 4, 7);
        assert_eq!(inst.n(), 12);
        assert!(inst.flow_symmetric());
        assert!(inst.dist_symmetric());
        // Zero diagonals.
        for i in 0..12 {
            assert_eq!(inst.flow(i, i), 0);
            assert_eq!(inst.dist(i, i), 0);
        }
        // Manhattan metric spot checks on the 3×4 grid: location 0 is
        // (0,0), location 5 is (1,1), location 11 is (2,3).
        assert_eq!(inst.dist(0, 5), 2);
        assert_eq!(inst.dist(0, 11), 5);
        assert_eq!(inst.dist(5, 11), 3);
        // Triangle inequality holds for a grid metric.
        for a in 0..12 {
            for b in 0..12 {
                for c in 0..12 {
                    assert!(inst.dist(a, c) <= inst.dist(a, b) + inst.dist(b, c));
                }
            }
        }
    }

    #[test]
    fn generators_are_deterministic_and_seed_sensitive() {
        assert_eq!(
            QapInstance::nugent_style(3, 3, 1),
            QapInstance::nugent_style(3, 3, 1)
        );
        assert_ne!(
            QapInstance::nugent_style(3, 3, 1),
            QapInstance::nugent_style(3, 3, 2)
        );
        assert_eq!(QapInstance::random(6, 5), QapInstance::random(6, 5));
        assert_ne!(QapInstance::random(6, 5), QapInstance::random(6, 6));
    }
}
