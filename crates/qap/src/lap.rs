//! An O(n³) solver for the linear assignment problem — the missing
//! ingredient that turns the rearrangement screen into a true
//! Gilmore–Lawler bound.
//!
//! The implementation is the classic Hungarian algorithm in its
//! shortest-augmenting-path form (Jonker–Volgenant style): rows are
//! inserted one at a time, each insertion growing a Dijkstra-like tree
//! of tight edges under dual potentials until a free column is reached,
//! then augmenting along the reconstructed path. Each of the `n`
//! insertions costs O(n²), so the whole solve is O(n³) — at the bound's
//! call sites `n ≤ 24`, this is microseconds.

/// Optimal solution of one `n × n` linear assignment problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LapSolution {
    /// `assignment[row] = column`, a permutation of `0..n`.
    pub assignment: Vec<usize>,
    /// `Σ_row cost[row][assignment[row]]`, the proven minimum.
    pub total: u64,
}

/// Solves `min_π Σ_i cost[i * n + π(i)]` over permutations `π` of
/// `0..n`. `cost` is row-major; entries may be any `u64` as long as
/// every *assignment* sum (`n` entries, one per row) fits `u64` —
/// otherwise the reported total wraps. The QAP bound guarantees this
/// via [`crate::QapInstance::try_new`]'s `n²·max_flow·max_dist`
/// overflow validation.
///
/// # Panics
///
/// Panics if `cost.len() != n * n` or `n == 0`.
pub fn solve_lap(n: usize, cost: &[u64]) -> LapSolution {
    assert!(n > 0, "empty assignment problem");
    assert_eq!(cost.len(), n * n, "cost matrix shape");
    const INF: i128 = i128::MAX / 4;

    // 1-based arrays with column 0 as the virtual "unmatched" column.
    let mut potential_row = vec![0i128; n + 1];
    let mut potential_col = vec![0i128; n + 1];
    let mut matched_row = vec![0usize; n + 1]; // matched_row[col] = row
    let mut previous_col = vec![0usize; n + 1];

    for row in 1..=n {
        matched_row[0] = row;
        let mut current_col = 0usize;
        let mut min_to_col = vec![INF; n + 1];
        let mut visited = vec![false; n + 1];
        // Grow the alternating tree until a free column is reached.
        loop {
            visited[current_col] = true;
            let tree_row = matched_row[current_col];
            let mut delta = INF;
            let mut next_col = 0usize;
            for col in 1..=n {
                if visited[col] {
                    continue;
                }
                let reduced = cost[(tree_row - 1) * n + (col - 1)] as i128
                    - potential_row[tree_row]
                    - potential_col[col];
                if reduced < min_to_col[col] {
                    min_to_col[col] = reduced;
                    previous_col[col] = current_col;
                }
                if min_to_col[col] < delta {
                    delta = min_to_col[col];
                    next_col = col;
                }
            }
            for col in 0..=n {
                if visited[col] {
                    potential_row[matched_row[col]] += delta;
                    potential_col[col] -= delta;
                } else {
                    min_to_col[col] -= delta;
                }
            }
            current_col = next_col;
            if matched_row[current_col] == 0 {
                break;
            }
        }
        // Augment: flip matches along the path back to the virtual column.
        while current_col != 0 {
            let prev = previous_col[current_col];
            matched_row[current_col] = matched_row[prev];
            current_col = prev;
        }
    }

    let mut assignment = vec![0usize; n];
    for col in 1..=n {
        assignment[matched_row[col] - 1] = col - 1;
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(row, &col)| cost[row * n + col])
        .sum();
    LapSolution { assignment, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference: minimum over all n! assignments.
    fn brute_lap(n: usize, cost: &[u64]) -> u64 {
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() {
                visit(items);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        let mut cols: Vec<usize> = (0..n).collect();
        let mut best = u64::MAX;
        permute(&mut cols, 0, &mut |p| {
            best = best.min(
                p.iter()
                    .enumerate()
                    .map(|(row, &col)| cost[row * n + col])
                    .sum(),
            );
        });
        best
    }

    #[test]
    fn one_by_one() {
        let s = solve_lap(1, &[42]);
        assert_eq!(s.assignment, vec![0]);
        assert_eq!(s.total, 42);
    }

    #[test]
    fn known_three_by_three() {
        // Row 0 wants col 1, row 1 wants col 0, row 2 wants col 2.
        let cost = [4, 1, 3, 2, 0, 5, 3, 2, 2];
        let s = solve_lap(3, &cost);
        assert_eq!(s.total, 5);
        assert_eq!(s.assignment, vec![1, 0, 2]);
    }

    #[test]
    fn diagonal_trap() {
        // The greedy diagonal (0+0+9) is beaten by the off-diagonal
        // matching 0→0, 1→2, 2→1 (0+2+5): the algorithm must reroute
        // earlier matches through augmenting paths to find it.
        let cost = [0, 1, 2, 1, 0, 2, 5, 5, 9];
        assert_eq!(solve_lap(3, &cost).total, 7);
    }

    #[test]
    fn assignment_is_a_permutation() {
        let cost: Vec<u64> = (0..36).map(|x| (x * 7919) % 97).collect();
        let s = solve_lap(6, &cost);
        let mut sorted = s.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for n in 2..=6 {
            for _ in 0..20 {
                let cost: Vec<u64> = (0..n * n).map(|_| next() % 1000).collect();
                assert_eq!(solve_lap(n, &cost).total, brute_lap(n, &cost), "n={n}");
            }
        }
    }

    #[test]
    fn large_values_do_not_wrap() {
        let big = u64::MAX / 4;
        let cost = [big, 0, 0, big];
        assert_eq!(solve_lap(2, &cost).total, 0);
    }
}
