//! Travelling salesman on a permutation tree — the second `Problem`
//! implementation.
//!
//! The paper's Table 3 ranks the Ta056 resolution among the great exact
//! resolutions of the time, three of which are TSP instances (Sw24978,
//! D15112, Usa13509). This crate makes the grid B&B generic machinery
//! solve (small) TSPs too, demonstrating that the interval coding is
//! problem-agnostic: any search space shaped like a regular tree works.
//!
//! The tour fixes city 0 as the start, so a tour over `n` cities is a
//! permutation of the remaining `n − 1` (leaf depth `n − 1`). The lower
//! bound combines the partial tour length with, for every unvisited
//! city, the cheapest edge that can still enter it (a degree-one
//! relaxation; admissible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gridbnb_coding::TreeShape;
use gridbnb_engine::Problem;

/// A symmetric or asymmetric TSP instance given by a full distance
/// matrix.
#[derive(Clone, Debug)]
pub struct TspInstance {
    n: usize,
    /// `dist[from * n + to]`.
    dist: Vec<u64>,
}

impl TspInstance {
    /// Builds an instance from a row-major distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` or `n < 2` or `n > 30`.
    pub fn new(n: usize, dist: Vec<u64>) -> Self {
        assert!((2..=30).contains(&n), "2 ≤ n ≤ 30 cities");
        assert_eq!(dist.len(), n * n);
        TspInstance { n, dist }
    }

    /// Euclidean instance from integer points (distances rounded to the
    /// nearest integer, TSPLIB-style).
    pub fn euclidean(points: &[(i64, i64)]) -> Self {
        let n = points.len();
        let mut dist = vec![0u64; n * n];
        for (i, &(xi, yi)) in points.iter().enumerate() {
            for (j, &(xj, yj)) in points.iter().enumerate() {
                let dx = (xi - xj) as f64;
                let dy = (yi - yj) as f64;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u64;
            }
        }
        TspInstance::new(n, dist)
    }

    /// Pseudo-random Euclidean instance on a `1000×1000` grid
    /// (SplitMix64-seeded, deterministic).
    pub fn random_euclidean(n: usize, seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let points: Vec<(i64, i64)> = (0..n)
            .map(|_| ((next() % 1000) as i64, (next() % 1000) as i64))
            .collect();
        TspInstance::euclidean(&points)
    }

    /// Number of cities.
    pub fn cities(&self) -> usize {
        self.n
    }

    /// Distance from city `a` to city `b`.
    #[inline]
    pub fn dist(&self, a: usize, b: usize) -> u64 {
        self.dist[a * self.n + b]
    }

    /// Length of a complete tour (cities in visiting order, starting
    /// anywhere; the return edge to the first city is included).
    pub fn tour_length(&self, tour: &[usize]) -> u64 {
        let mut total = 0;
        for w in tour.windows(2) {
            total += self.dist(w[0], w[1]);
        }
        total + self.dist(tour[tour.len() - 1], tour[0])
    }

    /// Brute-force optimum (fixes city 0; `n ≤ 10`).
    pub fn brute_optimum(&self) -> u64 {
        assert!(self.n <= 10, "brute force needs a small instance");
        let mut rest: Vec<usize> = (1..self.n).collect();
        let mut best = u64::MAX;
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() {
                visit(items);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        let me = self;
        permute(&mut rest, 0, &mut |order| {
            let mut tour = vec![0];
            tour.extend_from_slice(order);
            best = best.min(me.tour_length(&tour));
        });
        best
    }
}

/// The TSP as a [`Problem`]: depth `d` fixes the `(d+1)`-th city of the
/// tour; rank `r` selects the `r`-th (by index) unvisited city.
#[derive(Clone, Debug)]
pub struct TspProblem {
    instance: TspInstance,
    /// `min_in[c]` — cheapest incoming edge of city `c` (for the bound).
    min_in: Vec<u64>,
}

/// Search state: the current city, the visited set and the running tour
/// length.
#[derive(Clone, Debug)]
pub struct TspState {
    current: usize,
    visited: u64,
    length: u64,
}

impl TspProblem {
    /// Wraps an instance.
    pub fn new(instance: TspInstance) -> Self {
        let n = instance.cities();
        let min_in = (0..n)
            .map(|c| {
                (0..n)
                    .filter(|&o| o != c)
                    .map(|o| instance.dist(o, c))
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        TspProblem { instance, min_in }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &TspInstance {
        &self.instance
    }

    /// Decodes engine solution ranks into the visiting order (starting
    /// at city 0).
    pub fn decode_ranks(&self, ranks: &[u64]) -> Vec<usize> {
        let mut tour = vec![0usize];
        let mut visited = 1u64;
        for &r in ranks {
            let city = Self::nth_unvisited(self.instance.cities(), visited, r);
            visited |= 1 << city;
            tour.push(city);
        }
        tour
    }

    fn nth_unvisited(n: usize, visited: u64, rank: u64) -> usize {
        let mut seen = 0;
        for c in 0..n {
            if visited & (1 << c) == 0 {
                if seen == rank {
                    return c;
                }
                seen += 1;
            }
        }
        unreachable!("rank exceeds unvisited count")
    }
}

impl Problem for TspProblem {
    type State = TspState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.instance.cities() - 1)
    }

    fn root_state(&self) -> TspState {
        TspState {
            current: 0,
            visited: 1,
            length: 0,
        }
    }

    fn branch(&self, state: &TspState, rank: u64) -> TspState {
        let city = Self::nth_unvisited(self.instance.cities(), state.visited, rank);
        TspState {
            current: city,
            visited: state.visited | (1 << city),
            length: state.length + self.instance.dist(state.current, city),
        }
    }

    fn lower_bound(&self, state: &TspState) -> u64 {
        // Partial length + for each unvisited city the cheapest edge that
        // can enter it + the cheapest edge back into city 0. Any
        // completion must pay an incoming edge for every unvisited city
        // and one edge entering city 0, and all those edges are distinct,
        // so the sum never exceeds the true completion cost.
        let mut bound = state.length;
        for c in 0..self.instance.cities() {
            if state.visited & (1 << c) == 0 {
                bound += self.min_in[c];
            }
        }
        bound + self.min_in[0]
    }

    fn leaf_cost(&self, state: &TspState) -> u64 {
        state.length + self.instance.dist(state.current, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_engine::solve;

    #[test]
    fn square_tour() {
        // Four corners of a square: optimal tour is the perimeter.
        let inst = TspInstance::euclidean(&[(0, 0), (0, 10), (10, 10), (10, 0)]);
        assert_eq!(inst.tour_length(&[0, 1, 2, 3]), 40);
        assert_eq!(inst.brute_optimum(), 40);
        let problem = TspProblem::new(inst);
        let report = solve(&problem, None);
        assert_eq!(report.best_cost, Some(40));
    }

    #[test]
    fn bnb_matches_brute_force_random() {
        for seed in 0..8 {
            let inst = TspInstance::random_euclidean(8, seed);
            let expected = inst.brute_optimum();
            let problem = TspProblem::new(inst);
            let report = solve(&problem, None);
            assert_eq!(report.best_cost, Some(expected), "seed {seed}");
        }
    }

    #[test]
    fn decode_ranks_gives_valid_tour() {
        let inst = TspInstance::random_euclidean(7, 3);
        let problem = TspProblem::new(inst.clone());
        let report = solve(&problem, None);
        let sol = report.best.unwrap();
        let tour = problem.decode_ranks(&sol.leaf_ranks);
        assert_eq!(tour.len(), 7);
        assert_eq!(tour[0], 0);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        assert_eq!(inst.tour_length(&tour), sol.cost);
    }

    #[test]
    fn bound_admissible_at_root() {
        let inst = TspInstance::random_euclidean(8, 11);
        let optimum = inst.brute_optimum();
        let problem = TspProblem::new(inst);
        let root_bound = problem.lower_bound(&problem.root_state());
        assert!(root_bound <= optimum);
    }

    #[test]
    fn asymmetric_distances_supported() {
        // dist(a,b) != dist(b,a)
        let inst = TspInstance::new(
            3,
            vec![
                0, 1, 10, //
                10, 0, 1, //
                1, 10, 0,
            ],
        );
        // 0→1→2→0 = 1+1+1 = 3 ; 0→2→1→0 = 10+10+10 = 30.
        assert_eq!(inst.tour_length(&[0, 1, 2]), 3);
        assert_eq!(inst.tour_length(&[0, 2, 1]), 30);
        let problem = TspProblem::new(inst);
        let report = solve(&problem, None);
        assert_eq!(report.best_cost, Some(3));
    }

    #[test]
    fn pruning_happens_on_structured_instances() {
        let inst = TspInstance::random_euclidean(9, 4);
        let problem = TspProblem::new(inst);
        let report = solve(&problem, None);
        assert!(report.stats.pruned > 0, "bound should prune something");
        // Full tree below root for n-1=8: sum_{d=1..8} 8!/(8-d)!.
        let full: u64 = (1..=8)
            .map(|d| (0..d).map(|k| (8 - k) as u64).product::<u64>())
            .sum();
        assert!(report.stats.explored < full);
    }
}
