//! The interval-restricted depth-first explorer: one "B&B process" of the
//! paper's §4, exploring exactly the node numbers in `[A, B)`.

use crate::{Problem, SearchStats, Solution};
use gridbnb_coding::{Interval, TreeShape, UBig};

/// Why a call to [`IntervalExplorer::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The interval is fully explored: `A` reached `B`.
    Exhausted,
    /// The node budget was consumed; call `run` again to continue.
    BudgetSpent,
}

/// One depth-first B&B exploration restricted to an interval of node
/// numbers.
///
/// Maintains the invariant that makes interval coding work (paper §3):
/// depth-first traversal visits nodes in **non-decreasing number order**,
/// so the live interval `[position, end)` is at all times exactly the
/// un-explored remainder of the work unit:
///
/// * completing a leaf advances `position` by 1;
/// * eliminating a subtree by bound advances `position` by its weight;
/// * the coordinator stealing the tail shrinks `end`
///   ([`IntervalExplorer::shrink_end`]) and exploration never crosses it.
///
/// The explorer is resumable: [`IntervalExplorer::run`] processes at most
/// a given number of node visits, which is how worker threads interleave
/// exploration with the pull-model protocol (contact the farmer every *k*
/// nodes).
pub struct IntervalExplorer<'p, P: Problem> {
    problem: &'p P,
    shape: TreeShape,
    /// Lower endpoint `A`: number of the next node to explore. Monotone.
    position: UBig,
    /// Upper endpoint `B`. Only ever shrinks.
    end: UBig,
    /// DFS stack; `stack[0]` is the root.
    stack: Vec<Frame<P::State>>,
    /// Prune threshold: subtrees with `lower_bound >= cutoff` are
    /// eliminated. Tracks `min(initial upper bound, best found so far)`.
    cutoff: u64,
    best: Option<Solution>,
    fresh_best: bool,
    stats: SearchStats,
    done: bool,
}

struct Frame<S> {
    state: S,
    depth: usize,
    /// Rank of this node among its siblings (unused for the root).
    rank_in_parent: u64,
    /// Next child rank to visit.
    next_rank: u64,
    /// Number (range begin) of the child at `next_rank`; advanced by the
    /// child weight as ranks are consumed, so no multiplication is needed
    /// per sibling.
    next_child_lo: UBig,
}

impl<'p, P: Problem> IntervalExplorer<'p, P> {
    /// Creates an explorer for `interval` (clamped into the root range).
    ///
    /// `initial_cutoff` seeds the elimination operator — the paper's runs
    /// started from the best known upper bound (3681, then 3680). `None`
    /// means no initial bound (`u64::MAX`).
    pub fn new(problem: &'p P, interval: &Interval, initial_cutoff: Option<u64>) -> Self {
        let shape = problem.shape();
        let clamped = interval.intersect(&shape.root_range());
        let done = clamped.is_empty();
        let stack = if done {
            Vec::new()
        } else {
            vec![Frame {
                state: problem.root_state(),
                depth: 0,
                rank_in_parent: 0,
                next_rank: 0,
                next_child_lo: UBig::zero(),
            }]
        };
        IntervalExplorer {
            problem,
            shape,
            position: clamped.begin().clone(),
            end: clamped.end().clone(),
            stack,
            cutoff: initial_cutoff.unwrap_or(u64::MAX),
            best: None,
            fresh_best: false,
            stats: SearchStats::default(),
            done,
        }
    }

    /// The live interval `[position, end)` — what the worker reports to
    /// the coordinator on every contact (paper §4.1).
    pub fn current_interval(&self) -> Interval {
        Interval::new(self.position.clone(), self.end.clone())
    }

    /// Current lower endpoint `A` (exploration progress).
    pub fn position(&self) -> &UBig {
        &self.position
    }

    /// Current upper endpoint `B`.
    pub fn end(&self) -> &UBig {
        &self.end
    }

    /// `true` once `[position, end)` is empty and nothing remains.
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// Search statistics so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Current elimination threshold.
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// Best solution found *by this explorer* (not external bests).
    pub fn best(&self) -> Option<&Solution> {
        self.best.as_ref()
    }

    /// Takes the best solution if it improved since the last call —
    /// rule 2 of the paper's solution sharing: report improvements
    /// immediately.
    pub fn take_fresh_best(&mut self) -> Option<Solution> {
        if self.fresh_best {
            self.fresh_best = false;
            self.best.clone()
        } else {
            None
        }
    }

    /// Lowers the elimination threshold with an externally-found cost —
    /// rules 1 and 3 of the paper's solution sharing (initialize from and
    /// regularly re-read `SOLUTION`). Never raises it.
    pub fn observe_external_cutoff(&mut self, cost: u64) {
        if cost < self.cutoff {
            self.cutoff = cost;
        }
    }

    /// Shrinks the upper endpoint (the coordinator gave the tail to
    /// another worker). Never grows it. Applying the paper's equation 14
    /// amounts to `shrink_end(B')` since `position` only moves forward.
    pub fn shrink_end(&mut self, new_end: &UBig) {
        if *new_end < self.end {
            self.end = new_end.clone();
            if self.position >= self.end {
                self.finish();
            }
        }
    }

    /// Replaces the live interval by its intersection with the
    /// coordinator's copy (paper equation 14).
    pub fn intersect_with(&mut self, coordinator_copy: &Interval) {
        // position = max(A, A'): our own position is always >= the copy's
        // begin (the copy only lags), so only the end can shrink.
        self.shrink_end(coordinator_copy.end());
    }

    /// Explores at most `node_budget` node visits.
    pub fn run(&mut self, node_budget: u64) -> RunOutcome {
        let mut remaining = node_budget;
        while remaining > 0 {
            if self.done {
                return RunOutcome::Exhausted;
            }
            if self.visit_one() {
                remaining -= 1;
            }
        }
        if self.done {
            RunOutcome::Exhausted
        } else {
            RunOutcome::BudgetSpent
        }
    }

    /// Runs to exhaustion of the interval.
    pub fn run_to_end(&mut self) {
        while !self.done {
            self.visit_one();
        }
    }

    fn finish(&mut self) {
        self.done = true;
        self.stack.clear();
        // Normalize: the remaining interval is empty.
        if self.position > self.end {
            self.position = self.end.clone();
        }
    }

    /// Advances the traversal; returns `true` if a node was visited
    /// (counted against the budget), `false` for bookkeeping moves.
    fn visit_one(&mut self) -> bool {
        if self.position >= self.end {
            self.finish();
            return false;
        }
        let Some(frame) = self.stack.last_mut() else {
            self.finish();
            return false;
        };
        let depth = frame.depth;
        debug_assert!(depth < self.shape.leaf_depth());
        if frame.next_rank >= self.shape.arity_at(depth) {
            self.stack.pop();
            if self.stack.is_empty() {
                self.finish();
            }
            return false;
        }

        let child_depth = depth + 1;
        let child_weight = self.shape.weight_at(child_depth).clone();
        let rank = frame.next_rank;
        let child_lo = frame.next_child_lo.clone();
        let child_hi = &child_lo + &child_weight;
        frame.next_rank += 1;
        frame.next_child_lo = child_hi.clone();

        if child_hi <= self.position {
            // Entirely before A: already explored (or never ours).
            return false;
        }
        if child_lo >= self.end {
            // Entirely past B — and so is everything after in DFS order.
            self.finish();
            return false;
        }

        let child_state = self.problem.branch(&frame.state, rank);
        self.stats.explored += 1;

        if child_depth == self.shape.leaf_depth() {
            self.stats.leaves += 1;
            let cost = self.problem.leaf_cost(&child_state);
            if cost < self.cutoff {
                self.cutoff = cost;
                self.stats.improvements += 1;
                self.best = Some(Solution::new(cost, self.leaf_ranks_with(rank)));
                self.fresh_best = true;
            }
            self.advance_to(child_hi);
        } else {
            self.stats.bound_calls += 1;
            let bound = self.problem.lower_bound_against(&child_state, self.cutoff);
            if bound >= self.cutoff {
                // Elimination operator: the whole subtree is fathomed;
                // its un-explored numbers [position, child_hi) are done.
                self.stats.pruned += 1;
                self.advance_to(child_hi);
            } else {
                self.stats.branched += 1;
                self.stack.push(Frame {
                    state: child_state,
                    depth: child_depth,
                    rank_in_parent: rank,
                    next_rank: 0,
                    next_child_lo: child_lo,
                });
            }
        }
        true
    }

    #[inline]
    fn advance_to(&mut self, new_position: UBig) {
        debug_assert!(new_position > self.position);
        self.position = new_position;
        if self.position >= self.end {
            self.finish();
        }
    }

    /// Ranks from root to the leaf currently being evaluated, whose last
    /// branch took `leaf_rank`.
    fn leaf_ranks_with(&self, leaf_rank: u64) -> Vec<u64> {
        let mut ranks: Vec<u64> = self
            .stack
            .iter()
            .skip(1) // the root has no rank_in_parent
            .map(|f| f.rank_in_parent)
            .collect();
        ranks.push(leaf_rank);
        debug_assert_eq!(ranks.len(), self.shape.leaf_depth());
        ranks
    }
}
