//! The interval-restricted depth-first explorer: one "B&B process" of the
//! paper's §4, exploring exactly the node numbers in `[A, B)`.
//!
//! Two bounding modes share the traversal:
//!
//! * **scalar** — the paper's per-node loop: branch one child, bound it,
//!   prune or descend;
//! * **pooled** (default) — on first visit of a frame whose children are
//!   internal nodes, *all* in-interval children are branched into a
//!   [`FrontierPool`] and bounded in ONE [`Problem::lower_bound_batch`]
//!   call, then consumed one per visit in rank order. Pruning, leaf
//!   evaluation and `advance_to` still happen in non-decreasing
//!   node-number order, so the live-interval invariant of §3 is untouched
//!   and a pooled search is node-for-node identical to a scalar one (the
//!   equivalence is property-tested per problem crate).
//!
//! While a frame is pooled, sibling node numbers are tracked as `u128`
//! deltas against the frame's `UBig` base — possible whenever the parent
//! subtree weight fits 127 bits, which holds for every depth below the
//! top few on the instance sizes this workspace runs — so the hot loop
//! performs no per-sibling big-integer arithmetic at all.

use crate::{Problem, SearchStats, Solution};
use gridbnb_coding::{Interval, TreeShape, UBig};

/// Why a call to [`IntervalExplorer::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The interval is fully explored: `A` reached `B`.
    Exhausted,
    /// The node budget was consumed; call `run` again to continue.
    BudgetSpent,
}

/// One depth-first B&B exploration restricted to an interval of node
/// numbers.
///
/// Maintains the invariant that makes interval coding work (paper §3):
/// depth-first traversal visits nodes in **non-decreasing number order**,
/// so the live interval `[position, end)` is at all times exactly the
/// un-explored remainder of the work unit:
///
/// * completing a leaf advances `position` by 1;
/// * eliminating a subtree by bound advances `position` by its weight;
/// * the coordinator stealing the tail shrinks `end`
///   ([`IntervalExplorer::shrink_end`]) and exploration never crosses it —
///   in pooled mode this implicitly truncates the un-consumed tail of
///   every live pool, since an entry is only consumed once `position`
///   reaches it.
///
/// The explorer is resumable: [`IntervalExplorer::run`] processes at most
/// a given number of node visits, which is how worker threads interleave
/// exploration with the pull-model protocol (contact the farmer every *k*
/// nodes). A pooled visit consumes exactly one pool entry, so budget
/// accounting — and therefore the worker contact cadence — is identical
/// in both modes.
pub struct IntervalExplorer<'p, P: Problem> {
    problem: &'p P,
    shape: TreeShape,
    /// Lower endpoint `A`: number of the next node to explore. Monotone.
    position: UBig,
    /// Upper endpoint `B`. Only ever shrinks.
    end: UBig,
    /// DFS stack; `stack[0]` is the root.
    stack: Vec<Frame<P::State>>,
    /// Shared SoA arena: one contiguous segment of branched-but-not-yet-
    /// consumed siblings per pooled frame, stack-nested like the frames.
    pool: FrontierPool<P::State>,
    /// Reusable output buffer for `lower_bound_batch`.
    bound_scratch: Vec<u64>,
    /// Whether frames may enter pooled mode.
    pooling: bool,
    /// Prune threshold: subtrees with `lower_bound >= cutoff` are
    /// eliminated. Tracks `min(initial upper bound, best found so far)`.
    cutoff: u64,
    best: Option<Solution>,
    fresh_best: bool,
    stats: SearchStats,
    done: bool,
}

struct Frame<S> {
    state: S,
    depth: usize,
    /// Rank of this node among its siblings (unused for the root).
    rank_in_parent: u64,
    /// Next child rank to visit (scalar mode only).
    next_rank: u64,
    /// Scalar mode: number (range begin) of the child at `next_rank`,
    /// advanced by the child weight as ranks are consumed. Pooled mode:
    /// frozen at the frame's own range begin, the base the pool's `u128`
    /// deltas are relative to.
    next_child_lo: UBig,
    mode: FrameMode,
}

#[derive(Clone, Copy, Debug)]
enum FrameMode {
    /// Not yet visited; the mode is decided on first visit.
    Fresh,
    /// Per-child scalar stepping (leaf parents, oversized weights, or
    /// pooling disabled).
    Scalar,
    /// Children `[start, end)` of the arena were branched and bounded as
    /// one batch; `cursor` is the next un-consumed entry and `w` the
    /// child subtree weight (fits `u128` by mode selection).
    Pooled {
        start: usize,
        cursor: usize,
        end: usize,
        w: u128,
    },
}

/// Structure-of-arrays arena for pooled siblings: parallel columns so the
/// batch kernels see a flat `&[State]` and write a flat `&mut Vec<u64>`.
struct FrontierPool<S> {
    states: Vec<S>,
    ranks: Vec<u64>,
    /// Node-number offsets from the owning frame's base (`k · w`).
    deltas: Vec<u128>,
    bounds: Vec<u64>,
}

impl<S> FrontierPool<S> {
    fn new() -> Self {
        FrontierPool {
            states: Vec::new(),
            ranks: Vec::new(),
            deltas: Vec::new(),
            bounds: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    fn truncate(&mut self, n: usize) {
        self.states.truncate(n);
        self.ranks.truncate(n);
        self.deltas.truncate(n);
        self.bounds.truncate(n);
    }

    fn clear(&mut self) {
        self.truncate(0);
    }
}

impl<'p, P: Problem> IntervalExplorer<'p, P> {
    /// Creates an explorer for `interval` (clamped into the root range).
    ///
    /// `initial_cutoff` seeds the elimination operator — the paper's runs
    /// started from the best known upper bound (3681, then 3680). `None`
    /// means no initial bound (`u64::MAX`). Pooled bounding is on; use
    /// [`IntervalExplorer::with_pooling`] to force the scalar path.
    pub fn new(problem: &'p P, interval: &Interval, initial_cutoff: Option<u64>) -> Self {
        IntervalExplorer::with_pooling(problem, interval, initial_cutoff, true)
    }

    /// Like [`IntervalExplorer::new`] with explicit control over pooled
    /// bounding. `pooled = false` is the reference per-node mode the
    /// equivalence property tests pin the pooled mode against.
    pub fn with_pooling(
        problem: &'p P,
        interval: &Interval,
        initial_cutoff: Option<u64>,
        pooled: bool,
    ) -> Self {
        let shape = problem.shape();
        let clamped = interval.intersect(&shape.root_range());
        let done = clamped.is_empty();
        let stack = if done {
            Vec::new()
        } else {
            vec![Frame {
                state: problem.root_state(),
                depth: 0,
                rank_in_parent: 0,
                next_rank: 0,
                next_child_lo: UBig::zero(),
                mode: FrameMode::Fresh,
            }]
        };
        IntervalExplorer {
            problem,
            shape,
            position: clamped.begin().clone(),
            end: clamped.end().clone(),
            stack,
            pool: FrontierPool::new(),
            bound_scratch: Vec::new(),
            pooling: pooled,
            cutoff: initial_cutoff.unwrap_or(u64::MAX),
            best: None,
            fresh_best: false,
            stats: SearchStats::default(),
            done,
        }
    }

    /// Whether frames may batch their children through
    /// [`Problem::lower_bound_batch`].
    pub fn is_pooled(&self) -> bool {
        self.pooling
    }

    /// The live interval `[position, end)` — what the worker reports to
    /// the coordinator on every contact (paper §4.1).
    pub fn current_interval(&self) -> Interval {
        Interval::new(self.position.clone(), self.end.clone())
    }

    /// Current lower endpoint `A` (exploration progress).
    pub fn position(&self) -> &UBig {
        &self.position
    }

    /// Current upper endpoint `B`.
    pub fn end(&self) -> &UBig {
        &self.end
    }

    /// `true` once `[position, end)` is empty and nothing remains.
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// Search statistics so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Current elimination threshold.
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// Best solution found *by this explorer* (not external bests).
    pub fn best(&self) -> Option<&Solution> {
        self.best.as_ref()
    }

    /// Takes the best solution if it improved since the last call —
    /// rule 2 of the paper's solution sharing: report improvements
    /// immediately.
    pub fn take_fresh_best(&mut self) -> Option<Solution> {
        if self.fresh_best {
            self.fresh_best = false;
            self.best.clone()
        } else {
            None
        }
    }

    /// Lowers the elimination threshold with an externally-found cost —
    /// rules 1 and 3 of the paper's solution sharing (initialize from and
    /// regularly re-read `SOLUTION`). Never raises it.
    pub fn observe_external_cutoff(&mut self, cost: u64) {
        if cost < self.cutoff {
            self.cutoff = cost;
        }
    }

    /// Shrinks the upper endpoint (the coordinator gave the tail to
    /// another worker). Never grows it. Applying the paper's equation 14
    /// amounts to `shrink_end(B')` since `position` only moves forward.
    ///
    /// Pool entries whose subtree now starts at or past the new end are
    /// never consumed: consumption strictly follows `position`, and the
    /// traversal finishes the moment `position` reaches `end`.
    pub fn shrink_end(&mut self, new_end: &UBig) {
        if *new_end < self.end {
            self.end = new_end.clone();
            if self.position >= self.end {
                self.finish();
            }
        }
    }

    /// Replaces the live interval by its intersection with the
    /// coordinator's copy (paper equation 14).
    pub fn intersect_with(&mut self, coordinator_copy: &Interval) {
        // position = max(A, A'): our own position is always >= the copy's
        // begin (the copy only lags), so only the end can shrink.
        self.shrink_end(coordinator_copy.end());
    }

    /// Explores at most `node_budget` node visits.
    pub fn run(&mut self, node_budget: u64) -> RunOutcome {
        let mut remaining = node_budget;
        while remaining > 0 {
            if self.done {
                return RunOutcome::Exhausted;
            }
            if self.visit_one() {
                remaining -= 1;
            }
        }
        if self.done {
            RunOutcome::Exhausted
        } else {
            RunOutcome::BudgetSpent
        }
    }

    /// Runs to exhaustion of the interval.
    pub fn run_to_end(&mut self) {
        while !self.done {
            self.visit_one();
        }
    }

    fn finish(&mut self) {
        self.done = true;
        self.stack.clear();
        self.pool.clear();
        // Normalize: the remaining interval is empty.
        if self.position > self.end {
            self.position = self.end.clone();
        }
    }

    /// Advances the traversal; returns `true` if a node was visited
    /// (counted against the budget), `false` for bookkeeping moves.
    fn visit_one(&mut self) -> bool {
        if self.position >= self.end {
            self.finish();
            return false;
        }
        let Some(frame) = self.stack.last_mut() else {
            self.finish();
            return false;
        };
        let depth = frame.depth;
        debug_assert!(depth < self.shape.leaf_depth());
        if matches!(frame.mode, FrameMode::Fresh) {
            // Pool only frames whose children are internal (so leaf
            // evaluation — and thus every cutoff update — stays strictly
            // rank-ordered) and whose subtree weight fits the u128 delta
            // arithmetic. Everything else steps per child.
            if self.pooling
                && depth + 1 < self.shape.leaf_depth()
                && self.shape.weight_at(depth).bit_len() <= 127
            {
                self.fill_pool();
            } else {
                frame.mode = FrameMode::Scalar;
            }
        }
        match self.stack.last().map(|f| &f.mode) {
            Some(FrameMode::Scalar) => self.visit_scalar(),
            Some(FrameMode::Pooled { .. }) => self.visit_pooled(),
            Some(FrameMode::Fresh) | None => unreachable!("mode decided above"),
        }
    }

    /// Branches every in-interval child of the top frame into the arena
    /// and bounds them in one batch call.
    fn fill_pool(&mut self) {
        let frame_idx = self.stack.len() - 1;
        let depth = self.stack[frame_idx].depth;
        let arity = self.shape.arity_at(depth);
        let parent_weight = self.shape.weight_at(depth);
        let w = self
            .shape
            .weight_at(depth + 1)
            .to_u128()
            .expect("child weight fits u128 whenever the parent weight fits 127 bits");
        // All numbers in the frame's subtree are within parent_weight of
        // its base, so both deltas below fit u128.
        let base = &self.stack[frame_idx].next_child_lo;
        let pos_delta = self
            .position
            .checked_sub(base)
            .expect("position inside the frame's subtree")
            .to_u128()
            .expect("bounded by the parent weight");
        // First child whose range is not entirely before `position` ...
        let skip = (pos_delta / w) as u64;
        // ... through the last child whose range begins before `end`.
        let end_delta = self.end.checked_sub(base).expect("end past position");
        let last = if end_delta >= *parent_weight {
            arity
        } else {
            let d = end_delta.to_u128().expect("bounded by the parent weight");
            (d.div_ceil(w) as u64).min(arity)
        };
        debug_assert!(skip < last, "a visited frame has an in-interval child");
        let start = self.pool.len();
        let problem = self.problem;
        for k in skip..last {
            self.pool
                .states
                .push(problem.branch(&self.stack[frame_idx].state, k));
            self.pool.ranks.push(k);
            self.pool.deltas.push(u128::from(k) * w);
        }
        let filled = self.pool.len() - start;
        self.bound_scratch.clear();
        problem.lower_bound_batch(
            &self.pool.states[start..],
            self.cutoff,
            &mut self.bound_scratch,
        );
        assert_eq!(
            self.bound_scratch.len(),
            filled,
            "lower_bound_batch must produce exactly one bound per state"
        );
        self.pool.bounds.extend_from_slice(&self.bound_scratch);
        self.stats.nodes_bounded += filled as u64;
        self.stats.bound_batches += 1;
        self.stack[frame_idx].mode = FrameMode::Pooled {
            start,
            cursor: start,
            end: start + filled,
            w,
        };
    }

    /// Consumes the next entry of the top frame's pool segment.
    fn visit_pooled(&mut self) -> bool {
        let frame_idx = self.stack.len() - 1;
        let FrameMode::Pooled {
            start,
            cursor,
            end: seg_end,
            w,
        } = self.stack[frame_idx].mode
        else {
            unreachable!("visit_pooled on a non-pooled frame")
        };
        if cursor == seg_end {
            // Segment drained: release it and pop the frame. Nested
            // frames release their segments first (stack discipline), so
            // the arena tail is exactly ours.
            debug_assert_eq!(self.pool.len(), seg_end);
            self.pool.truncate(start);
            self.stack.pop();
            if self.stack.is_empty() {
                self.finish();
            }
            return false;
        }
        let rank = self.pool.ranks[cursor];
        let delta = self.pool.deltas[cursor];
        let bound = self.pool.bounds[cursor];
        let FrameMode::Pooled { cursor: c, .. } = &mut self.stack[frame_idx].mode else {
            unreachable!()
        };
        *c += 1;
        self.stats.explored += 1;
        self.stats.bound_calls += 1;
        let frame = &self.stack[frame_idx];
        debug_assert!(self.position < frame.next_child_lo.add_u128(delta + w));
        if bound >= self.cutoff {
            // Elimination operator: the whole subtree is fathomed; its
            // un-explored numbers [position, child_hi) are done. The
            // batch-bound contract guarantees this is the same decision
            // the scalar operator would make against today's (possibly
            // lower) cutoff.
            self.stats.pruned += 1;
            let child_hi = frame.next_child_lo.add_u128(delta + w);
            self.advance_to(child_hi);
        } else {
            self.stats.branched += 1;
            let child_lo = frame.next_child_lo.add_u128(delta);
            let child_depth = frame.depth + 1;
            let state = self.pool.states[cursor].clone();
            self.stack.push(Frame {
                state,
                depth: child_depth,
                rank_in_parent: rank,
                next_rank: 0,
                next_child_lo: child_lo,
                mode: FrameMode::Fresh,
            });
        }
        true
    }

    /// The per-child scalar step (the paper's loop, unchanged semantics).
    fn visit_scalar(&mut self) -> bool {
        let frame = self.stack.last_mut().expect("checked by visit_one");
        let depth = frame.depth;
        if frame.next_rank >= self.shape.arity_at(depth) {
            self.stack.pop();
            if self.stack.is_empty() {
                self.finish();
            }
            return false;
        }

        let child_depth = depth + 1;
        // Borrowed, not cloned: the only allocation on this path is the
        // child_hi sum itself (plus one clone when a subtree is skipped
        // over by advance_to).
        let child_weight = self.shape.weight_at(child_depth);
        let rank = frame.next_rank;
        frame.next_rank += 1;
        let child_hi = &frame.next_child_lo + child_weight;

        if child_hi <= self.position {
            // Entirely before A: already explored (or never ours).
            frame.next_child_lo = child_hi;
            return false;
        }
        if frame.next_child_lo >= self.end {
            // Entirely past B — and so is everything after in DFS order.
            self.finish();
            return false;
        }

        let child_state = self.problem.branch(&frame.state, rank);
        self.stats.explored += 1;

        if child_depth == self.shape.leaf_depth() {
            frame.next_child_lo = child_hi.clone();
            self.stats.leaves += 1;
            let cost = self.problem.leaf_cost(&child_state);
            if cost < self.cutoff {
                self.cutoff = cost;
                self.stats.improvements += 1;
                self.best = Some(Solution::new(cost, self.leaf_ranks_with(rank)));
                self.fresh_best = true;
            }
            self.advance_to(child_hi);
        } else {
            let bound = self.problem.lower_bound_against(&child_state, self.cutoff);
            self.stats.bound_calls += 1;
            self.stats.nodes_bounded += 1;
            if bound >= self.cutoff {
                // Elimination operator: the whole subtree is fathomed;
                // its un-explored numbers [position, child_hi) are done.
                self.stats.pruned += 1;
                frame.next_child_lo = child_hi.clone();
                self.advance_to(child_hi);
            } else {
                self.stats.branched += 1;
                let child_lo = std::mem::replace(&mut frame.next_child_lo, child_hi);
                self.stack.push(Frame {
                    state: child_state,
                    depth: child_depth,
                    rank_in_parent: rank,
                    next_rank: 0,
                    next_child_lo: child_lo,
                    mode: FrameMode::Fresh,
                });
            }
        }
        true
    }

    #[inline]
    fn advance_to(&mut self, new_position: UBig) {
        debug_assert!(new_position > self.position);
        self.position = new_position;
        if self.position >= self.end {
            self.finish();
        }
    }

    /// Ranks from root to the leaf currently being evaluated, whose last
    /// branch took `leaf_rank`.
    fn leaf_ranks_with(&self, leaf_rank: u64) -> Vec<u64> {
        let mut ranks: Vec<u64> = self
            .stack
            .iter()
            .skip(1) // the root has no rank_in_parent
            .map(|f| f.rank_in_parent)
            .collect();
        ranks.push(leaf_rank);
        debug_assert_eq!(ranks.len(), self.shape.leaf_depth());
        ranks
    }
}
