//! Lockstep verification harness: drive a pooled and a scalar explorer
//! over the same interval and assert they are node-for-node identical.
//!
//! The pooled explorer batches bound evaluations through
//! [`Problem::lower_bound_batch`], possibly against an older (larger)
//! cutoff than the scalar explorer uses at consumption time. The batch
//! contract (see [`Problem::lower_bound_batch`]) promises identical
//! elimination *decisions* anyway; this module is how each problem crate
//! property-tests that its kernel actually honors the promise — on
//! budgeted slices, under mid-run `shrink_end`, down to every counter.

use crate::{IntervalExplorer, Problem, SearchStats};
use gridbnb_coding::{Interval, UBig};

/// Mid-run interference applied identically to both explorers between
/// `run` slices, exercising the paths a real worker hits.
#[derive(Clone, Copy, Debug)]
pub struct Interference {
    /// Every `period` slices (0 = never), shrink both ends to keep
    /// `keep_num/keep_den` of the live remainder — the coordinator
    /// stealing the tail, possibly mid-pool.
    pub shrink_period: usize,
    /// Numerator of the kept fraction on a shrink.
    pub keep_num: u64,
    /// Denominator of the kept fraction on a shrink (0 treated as 1).
    pub keep_den: u64,
    /// External incumbent cost observed after the first slice (solution
    /// sharing, rule 3), `u64::MAX` = none.
    pub external_cutoff: u64,
}

impl Default for Interference {
    /// No interference: never shrink, no external incumbent.
    fn default() -> Self {
        Interference {
            shrink_period: 0,
            keep_num: 1,
            keep_den: 1,
            external_cutoff: u64::MAX,
        }
    }
}

/// Runs a pooled and a scalar explorer over `interval` in `slice`-sized
/// budget slices and panics on the first divergence.
///
/// Checked after every slice: live interval endpoints, exhaustion flag,
/// elimination cutoff, best solution (cost *and* leaf ranks), and the
/// traversal counters of [`SearchStats`] — `explored`, `branched`,
/// `pruned`, `leaves`, `improvements`, `bound_calls`. The batching
/// counters (`nodes_bounded`, `bound_batches`) are intentionally *not*
/// compared: they describe how bounds were computed, not what the search
/// did.
///
/// Returns the final stats of the pooled run for callers that want to
/// assert problem-specific facts on top.
pub fn assert_pooled_matches_scalar<P: Problem>(
    problem: &P,
    interval: &Interval,
    initial_cutoff: Option<u64>,
    slice: u64,
    interference: Interference,
) -> SearchStats {
    let slice = slice.max(1);
    let mut pooled = IntervalExplorer::with_pooling(problem, interval, initial_cutoff, true);
    let mut scalar = IntervalExplorer::with_pooling(problem, interval, initial_cutoff, false);
    let mut slices = 0usize;
    loop {
        let a = pooled.run(slice);
        let b = scalar.run(slice);
        assert_eq!(a, b, "run outcome diverged at slice {slices}");
        slices += 1;
        if slices == 1 && interference.external_cutoff != u64::MAX {
            pooled.observe_external_cutoff(interference.external_cutoff);
            scalar.observe_external_cutoff(interference.external_cutoff);
        }
        if interference.shrink_period > 0 && slices.is_multiple_of(interference.shrink_period) {
            let live = scalar.current_interval();
            let keep = live
                .length()
                .mul_div_floor(interference.keep_num, interference.keep_den.max(1));
            let new_end = live.begin().add(&keep);
            pooled.shrink_end(&new_end);
            scalar.shrink_end(&new_end);
        }
        assert_lockstep(&pooled, &scalar, slices);
        if pooled.is_exhausted() && scalar.is_exhausted() {
            return *pooled.stats();
        }
        assert!(
            slices < 10_000_000,
            "equivalence driver failed to terminate"
        );
    }
}

fn assert_lockstep<P: Problem>(
    pooled: &IntervalExplorer<'_, P>,
    scalar: &IntervalExplorer<'_, P>,
    slices: usize,
) {
    assert_eq!(
        pooled.position(),
        scalar.position(),
        "position diverged after slice {slices}"
    );
    assert_eq!(
        pooled.end(),
        scalar.end(),
        "end diverged after slice {slices}"
    );
    assert_eq!(
        pooled.is_exhausted(),
        scalar.is_exhausted(),
        "exhaustion diverged after slice {slices}"
    );
    assert_eq!(
        pooled.cutoff(),
        scalar.cutoff(),
        "cutoff diverged after slice {slices}"
    );
    assert_eq!(
        pooled.best(),
        scalar.best(),
        "best solution diverged after slice {slices}"
    );
    let (p, s) = (pooled.stats(), scalar.stats());
    let traversal = |st: &SearchStats| {
        (
            st.explored,
            st.branched,
            st.pruned,
            st.leaves,
            st.improvements,
            st.bound_calls,
        )
    };
    assert_eq!(
        traversal(p),
        traversal(s),
        "traversal counters diverged after slice {slices}"
    );
    // Scalar mode evaluates exactly the bounds it consumes.
    assert_eq!(s.nodes_bounded, s.bound_calls, "scalar nodes_bounded");
    // Pooled mode never evaluates fewer than it consumes.
    assert!(p.nodes_bounded >= p.bound_calls, "pooled nodes_bounded");
}

/// Convenience wrapper: full run, no interference, one big slice.
pub fn assert_pooled_matches_scalar_simple<P: Problem>(
    problem: &P,
    interval: &Interval,
    initial_cutoff: Option<u64>,
) -> SearchStats {
    assert_pooled_matches_scalar(
        problem,
        interval,
        initial_cutoff,
        u64::MAX,
        Interference::default(),
    )
}

/// A sub-interval of `[0, total)` selected by per-mille endpoints — the
/// shared recipe the per-problem equivalence proptests use to cover
/// prefixes, suffixes and interior slices.
pub fn permille_interval(total: &UBig, a: u64, b: u64) -> Interval {
    let (lo, hi) = (a.min(b) % 1001, a.max(b) % 1001);
    Interval::new(total.mul_div_floor(lo, 1000), total.mul_div_floor(hi, 1000))
}
