//! The [`Problem`] trait: what a combinatorial optimization problem must
//! provide for the interval-coded B&B to solve it.

use gridbnb_coding::TreeShape;

/// A minimization problem whose solution space is the leaf set of a
/// regular search tree.
///
/// The trait carries the paper's §2 operators:
///
/// * **branching** — [`Problem::branch`] produces the child state
///   obtained by taking the `rank`-th branch (ranks are the birth order
///   of §3.2: rank 0 first);
/// * **bounding** — [`Problem::lower_bound`] on any internal state;
/// * **evaluation** — [`Problem::leaf_cost`] on complete states;
/// * the **selection** and **elimination** operators live in the engine
///   (depth-first selection; elimination by bound against the incumbent).
///
/// The tree must be *regular* (arity depends only on depth) so that the
/// interval coding applies; permutation problems satisfy this naturally
/// (depth `d` has `n − d` open choices).
pub trait Problem: Send + Sync {
    /// Search state attached to a tree node (e.g. a partial schedule).
    type State: Clone + Send;

    /// The shape of the search tree (arity per depth).
    fn shape(&self) -> TreeShape;

    /// The state of the root node (empty partial solution).
    fn root_state(&self) -> Self::State;

    /// The child state reached by taking branch `rank` (`0 ≤ rank <
    /// arity(depth(state))`).
    fn branch(&self, state: &Self::State, rank: u64) -> Self::State;

    /// A lower bound on the cost of every leaf below `state`. Must be
    /// admissible (never exceed the true minimum below the node):
    /// inadmissible bounds lose optimality proofs.
    fn lower_bound(&self, state: &Self::State) -> u64;

    /// Cutoff-aware variant of [`Problem::lower_bound`]: the explorer
    /// passes the current elimination threshold so that **tiered**
    /// bounding operators can stop at the cheapest tier that already
    /// proves `bound >= cutoff` (the subtree is eliminated either way,
    /// so computing a stronger bound would be wasted work).
    ///
    /// The returned value must still be admissible — it only ever
    /// replaces `lower_bound` in the elimination test, never in an
    /// optimality claim. The default ignores the cutoff and delegates
    /// to [`Problem::lower_bound`], which is correct for single-tier
    /// bounds.
    fn lower_bound_against(&self, state: &Self::State, cutoff: u64) -> u64 {
        let _ = cutoff;
        self.lower_bound(state)
    }

    /// Batched form of [`Problem::lower_bound_against`]: evaluate a pool
    /// of states against one cutoff, appending one bound per state to
    /// `out` (in order; `out` is cleared first).
    ///
    /// The pooled explorer calls this once per sibling pool, so problems
    /// can override it with a flat kernel that shares work across the
    /// pool (parent-level precomputation, SoA scratch, screen-then-
    /// escalate). Two contracts beyond admissibility:
    ///
    /// * exactly `states.len()` values are produced, aligned by index;
    /// * for every state, the returned bound must make the *same*
    ///   elimination decision as `lower_bound_against(state, c)` for any
    ///   `c ≤ cutoff` — i.e. `batch[i] ≥ c ⇔ scalar_i ≥ c`. Since cutoffs
    ///   only decrease as incumbents improve, this keeps a pooled search
    ///   node-for-node identical to the scalar one even though the pool
    ///   was bounded against an older (larger) cutoff. Tiered operators
    ///   satisfy it automatically when the cheap tier is dominated by the
    ///   strong tier (as Gilmore–Lawler dominates the QAP screen).
    ///
    /// The default loops the scalar operator.
    fn lower_bound_batch(&self, states: &[Self::State], cutoff: u64, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(states.len());
        for state in states {
            out.push(self.lower_bound_against(state, cutoff));
        }
    }

    /// The exact cost of a complete (leaf-depth) state.
    fn leaf_cost(&self, state: &Self::State) -> u64;
}

/// A complete solution: the branch ranks from root to leaf, plus cost.
///
/// Ranks are domain-independent (they are the factoradic digits of the
/// leaf number); each problem knows how to decode them — e.g. the
/// flowshop crate turns them back into a job permutation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Solution {
    /// Cost of the leaf (the objective value).
    pub cost: u64,
    /// Branch ranks from the root (length = leaf depth).
    pub leaf_ranks: Vec<u64>,
}

impl Solution {
    /// Creates a solution record.
    pub fn new(cost: u64, leaf_ranks: Vec<u64>) -> Self {
        Solution { cost, leaf_ranks }
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cost {} via ranks [", self.cost)?;
        for (i, r) in self.leaf_ranks.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}
