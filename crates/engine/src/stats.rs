//! Search statistics collected by the explorer.

use std::ops::AddAssign;

/// Counters describing one exploration (or the merged total of many).
///
/// `explored` mirrors the paper's Table 2 "Explored nodes" row: every
/// node *visited* by the search (branched, evaluated or pruned), not
/// counting nodes skipped wholesale because they lie outside the
/// assigned interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes visited (decomposed + leaves + pruned).
    pub explored: u64,
    /// Internal nodes decomposed by the branching operator.
    pub branched: u64,
    /// Subtrees eliminated by the bounding test.
    pub pruned: u64,
    /// Leaves evaluated.
    pub leaves: u64,
    /// Evaluated leaves that improved the incumbent.
    pub improvements: u64,
    /// Bound results consumed by the elimination test — one per internal
    /// node visit, so `bound_calls == branched + pruned` in both the
    /// scalar and the pooled explorer.
    pub bound_calls: u64,
    /// States actually evaluated by the bounding operator. Equals
    /// `bound_calls` in scalar mode; in pooled mode it counts pool fills,
    /// which may exceed consumption when `shrink_end` truncates a pool's
    /// un-consumed tail.
    pub nodes_bounded: u64,
    /// Invocations of [`crate::Problem::lower_bound_batch`] (pooled mode
    /// only; each fill evaluates a whole sibling pool in one call).
    pub bound_batches: u64,
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.explored += rhs.explored;
        self.branched += rhs.branched;
        self.pruned += rhs.pruned;
        self.leaves += rhs.leaves;
        self.improvements += rhs.improvements;
        self.bound_calls += rhs.bound_calls;
        self.nodes_bounded += rhs.nodes_bounded;
        self.bound_batches += rhs.bound_batches;
    }
}

impl SearchStats {
    /// Merges counters from another run.
    pub fn merge(&mut self, other: &SearchStats) {
        *self += *other;
    }
}
