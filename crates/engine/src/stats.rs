//! Search statistics collected by the explorer.

use std::ops::AddAssign;

/// Counters describing one exploration (or the merged total of many).
///
/// `explored` mirrors the paper's Table 2 "Explored nodes" row: every
/// node *visited* by the search (branched, evaluated or pruned), not
/// counting nodes skipped wholesale because they lie outside the
/// assigned interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes visited (decomposed + leaves + pruned).
    pub explored: u64,
    /// Internal nodes decomposed by the branching operator.
    pub branched: u64,
    /// Subtrees eliminated by the bounding test.
    pub pruned: u64,
    /// Leaves evaluated.
    pub leaves: u64,
    /// Evaluated leaves that improved the incumbent.
    pub improvements: u64,
    /// Calls to the lower-bound operator.
    pub bound_calls: u64,
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.explored += rhs.explored;
        self.branched += rhs.branched;
        self.pruned += rhs.pruned;
        self.leaves += rhs.leaves;
        self.improvements += rhs.improvements;
        self.bound_calls += rhs.bound_calls;
    }
}

impl SearchStats {
    /// Merges counters from another run.
    pub fn merge(&mut self, other: &SearchStats) {
        *self += *other;
    }
}
