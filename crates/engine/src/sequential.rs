//! Convenience single-process solvers built on the interval explorer.

use crate::{IntervalExplorer, Problem, SearchStats, Solution};
use gridbnb_coding::Interval;

/// Result of a (sub-)exploration.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Cost of the best solution found, if any leaf beat the initial
    /// bound. `None` means the initial upper bound was proven optimal
    /// (or the space was empty).
    pub best_cost: Option<u64>,
    /// The best solution found by this exploration.
    pub best: Option<Solution>,
    /// Search counters.
    pub stats: SearchStats,
}

impl SolveReport {
    /// The proven optimal cost: the best found, or the initial upper
    /// bound if nothing beat it.
    pub fn proven_optimum(&self, initial_ub: Option<u64>) -> Option<u64> {
        self.best_cost.or(initial_ub)
    }
}

/// Solves the whole problem space sequentially (one B&B process over the
/// root interval), running to completion. Returns a proof-of-optimality
/// report: when it returns, every node has been explored or eliminated.
pub fn solve<P: Problem>(problem: &P, initial_ub: Option<u64>) -> SolveReport {
    solve_interval(problem, &problem.shape().root_range(), initial_ub)
}

/// Solves the restriction of the problem to `interval`.
pub fn solve_interval<P: Problem>(
    problem: &P,
    interval: &Interval,
    initial_ub: Option<u64>,
) -> SolveReport {
    let mut explorer = IntervalExplorer::new(problem, interval, initial_ub);
    explorer.run_to_end();
    let best = explorer.best().cloned();
    SolveReport {
        best_cost: best.as_ref().map(|s| s.cost),
        best,
        stats: *explorer.stats(),
    }
}
