//! Small synthetic problems used by tests and benchmarks.
//!
//! These are not part of the paper; they exist so that engine and
//! protocol behaviour can be verified against brute force on trees small
//! enough to enumerate, independently of the flowshop substrate.

use crate::Problem;
use gridbnb_coding::TreeShape;

/// A linear assignment toy problem on a permutation tree: place `n`
/// distinct items into `n` positions, paying `cost[position][item]`.
///
/// Rank `r` at depth `d` selects the `r`-th (by index) still-unused item
/// for position `d`. The bound adds, for every open position, the
/// cheapest still-unused item — admissible because each position's true
/// choice can only cost more.
#[derive(Clone, Debug)]
pub struct TableAssignment {
    n: usize,
    /// `cost[position * n + item]`.
    cost: Vec<u64>,
}

/// Search state: which items are used, the running cost.
#[derive(Clone, Debug)]
pub struct AssignState {
    used: u64, // bitmask over items (n <= 64)
    depth: usize,
    cost_so_far: u64,
}

impl TableAssignment {
    /// Builds a toy instance from an explicit cost table
    /// (`cost[position][item]` flattened row-major).
    ///
    /// # Panics
    ///
    /// Panics if `cost.len() != n*n` or `n > 20` (keep toys enumerable).
    pub fn new(n: usize, cost: Vec<u64>) -> Self {
        assert!(n <= 20, "toy problems should stay small");
        assert_eq!(cost.len(), n * n);
        TableAssignment { n, cost }
    }

    /// A deterministic instance: `cost[p][i] = ((p+1)·(i+2)) mod 17 + 1`.
    /// Non-trivial structure, stable across runs.
    pub fn diagonal(n: usize) -> Self {
        let cost = (0..n * n)
            .map(|k| {
                let (p, i) = (k / n, k % n);
                ((p as u64 + 1) * (i as u64 + 2)) % 17 + 1
            })
            .collect();
        TableAssignment::new(n, cost)
    }

    /// A pseudo-random instance from a seed (SplitMix64; no external
    /// RNG dependency so the library stays deterministic).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let cost = (0..n * n).map(|_| next() % 100 + 1).collect();
        TableAssignment::new(n, cost)
    }

    /// Number of items/positions.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn cost_of(&self, position: usize, item: usize) -> u64 {
        self.cost[position * self.n + item]
    }

    /// The `rank`-th unused item (by increasing index) given `used`.
    fn item_at_rank(&self, used: u64, rank: u64) -> usize {
        let mut seen = 0;
        for item in 0..self.n {
            if used & (1 << item) == 0 {
                if seen == rank {
                    return item;
                }
                seen += 1;
            }
        }
        unreachable!("rank exceeds free item count");
    }

    /// Brute-force optimum by full enumeration. Only for `n ≤ 9`.
    pub fn optimum(&self) -> u64 {
        assert!(self.n <= 9, "brute force needs a small instance");
        let mut best = u64::MAX;
        let mut items: Vec<usize> = (0..self.n).collect();
        permute(&mut items, 0, &mut |perm| {
            let total: u64 = perm
                .iter()
                .enumerate()
                .map(|(p, &i)| self.cost_of(p, i))
                .sum();
            best = best.min(total);
        });
        best
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

impl Problem for TableAssignment {
    type State = AssignState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.n)
    }

    fn root_state(&self) -> AssignState {
        AssignState {
            used: 0,
            depth: 0,
            cost_so_far: 0,
        }
    }

    fn branch(&self, state: &AssignState, rank: u64) -> AssignState {
        let item = self.item_at_rank(state.used, rank);
        AssignState {
            used: state.used | (1 << item),
            depth: state.depth + 1,
            cost_so_far: state.cost_so_far + self.cost_of(state.depth, item),
        }
    }

    fn lower_bound(&self, state: &AssignState) -> u64 {
        let mut bound = state.cost_so_far;
        for position in state.depth..self.n {
            let cheapest = (0..self.n)
                .filter(|&i| state.used & (1 << i) == 0)
                .map(|i| self.cost_of(position, i))
                .min()
                .unwrap_or(0);
            bound += cheapest;
        }
        bound
    }

    fn leaf_cost(&self, state: &AssignState) -> u64 {
        debug_assert_eq!(state.depth, self.n);
        state.cost_so_far
    }
}

/// A permutation problem with **no pruning power**: the bound is always
/// zero, so the search must enumerate the entire tree. Leaf cost is a
/// hash of the leaf ranks. Used to verify exhaustive node counts.
#[derive(Clone, Debug)]
pub struct FullEnumeration {
    n: usize,
}

impl FullEnumeration {
    /// A full-enumeration problem over permutations of `n` elements.
    pub fn new(n: usize) -> Self {
        assert!(n <= 12, "full enumeration must stay feasible");
        FullEnumeration { n }
    }

    /// Total tree nodes excluding the root: what an exhaustive search
    /// must visit (`Σ_{d=1..=n} n!/(n−d)!`).
    pub fn total_nodes_below_root(&self) -> u64 {
        let mut total = 0u64;
        let mut level = 1u64;
        for d in 0..self.n {
            level *= (self.n - d) as u64;
            total += level;
        }
        total
    }
}

/// State: depth and a running mix of chosen ranks.
#[derive(Clone, Debug)]
pub struct EnumState {
    depth: usize,
    mix: u64,
}

impl Problem for FullEnumeration {
    type State = EnumState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.n)
    }

    fn root_state(&self) -> EnumState {
        EnumState { depth: 0, mix: 0 }
    }

    fn branch(&self, state: &EnumState, rank: u64) -> EnumState {
        EnumState {
            depth: state.depth + 1,
            mix: state
                .mix
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(rank + 1),
        }
    }

    fn lower_bound(&self, _state: &EnumState) -> u64 {
        0
    }

    fn leaf_cost(&self, state: &EnumState) -> u64 {
        debug_assert_eq!(state.depth, self.n);
        // Strictly positive so the zero lower bound never reaches the
        // cutoff and the enumeration really is exhaustive.
        state.mix % 1_000_000 + 1
    }
}
