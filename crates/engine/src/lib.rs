//! Sequential branch-and-bound engine over interval-coded regular trees.
//!
//! This crate provides the four B&B operators of the paper's §2
//! (branching, bounding, selection, elimination) behind a generic
//! [`Problem`] trait, and the **interval-restricted depth-first
//! explorer** ([`IntervalExplorer`]) that is the unit of execution of the
//! grid algorithm of §4: a B&B process that explores exactly the node
//! numbers of an interval `[A, B)`, advancing `A` as it goes and honoring
//! online shrinking of `B` (work stolen by the coordinator).
//!
//! The explorer maintains the central invariant of the interval coding:
//! *depth-first order is node-number order*, so the pair `(A, B)` always
//! encodes the exact remaining work. Pruning a subtree (elimination by
//! bound) advances `A` by the subtree weight; completing a leaf advances
//! it by one.
//!
//! # Example
//!
//! ```
//! use gridbnb_engine::{solve, toy::TableAssignment};
//!
//! // A 5-element assignment toy problem with known optimum.
//! let problem = TableAssignment::diagonal(5);
//! let report = solve(&problem, None);
//! assert_eq!(report.best_cost, Some(problem.optimum()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
mod explorer;
mod problem;
mod sequential;
mod stats;
pub mod toy;

pub use explorer::{IntervalExplorer, RunOutcome};
pub use problem::{Problem, Solution};
pub use sequential::{solve, solve_interval, SolveReport};
pub use stats::SearchStats;

pub use gridbnb_coding::{Interval, TreeShape, UBig};
