//! Property tests for the engine: interval restriction is exact, splits
//! never lose the optimum, and budgeted runs match monolithic runs.

use gridbnb_coding::{Interval, NodePath, UBig};
use gridbnb_engine::toy::{FullEnumeration, TableAssignment};
use gridbnb_engine::{solve, solve_interval, IntervalExplorer, Problem};
use proptest::prelude::*;

/// Cost of the leaf numbered `num` computed independently by replaying
/// the factoradic ranks through the problem.
fn leaf_cost_by_number<P: Problem>(problem: &P, num: u64) -> u64 {
    let shape = problem.shape();
    let path = NodePath::leaf_with_number(&shape, &UBig::from(num));
    let mut state = problem.root_state();
    for &rank in path.ranks() {
        state = problem.branch(&state, rank);
    }
    problem.leaf_cost(&state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_restriction_finds_exact_min(a in 0u64..720, b in 0u64..720) {
        let problem = FullEnumeration::new(6);
        let (lo, hi) = (a.min(b), a.max(b));
        let report = solve_interval(
            &problem,
            &Interval::new(UBig::from(lo), UBig::from(hi)),
            None,
        );
        let expected = (lo..hi).map(|n| leaf_cost_by_number(&problem, n)).min();
        prop_assert_eq!(report.best_cost, expected);
        prop_assert_eq!(report.stats.leaves, hi - lo);
    }

    #[test]
    fn random_split_preserves_optimum(seed in 0u64..500, cut_ppm in 0u64..=1_000_000) {
        let problem = TableAssignment::random(6, seed);
        let full = solve(&problem, None);
        let total = problem.shape().root_range().end().to_u64().unwrap();
        let cut = total * cut_ppm / 1_000_000;
        let left = solve_interval(&problem, &Interval::new(UBig::zero(), UBig::from(cut)), None);
        let right = solve_interval(&problem, &Interval::new(UBig::from(cut), UBig::from(total)), None);
        let best = [left.best_cost, right.best_cost].into_iter().flatten().min();
        prop_assert_eq!(best, full.best_cost);
    }

    #[test]
    fn budgeted_run_equals_monolithic(seed in 0u64..200, budget in 1u64..50) {
        let problem = TableAssignment::random(5, seed);
        let full = solve(&problem, None);
        let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
        while !explorer.is_exhausted() {
            explorer.run(budget);
        }
        prop_assert_eq!(explorer.best().map(|s| s.cost), full.best_cost);
        prop_assert_eq!(explorer.stats().explored, full.stats.explored);
    }

    #[test]
    fn tighter_initial_bound_never_explores_more(seed in 0u64..200, slack in 0u64..20) {
        let problem = TableAssignment::random(6, seed);
        let optimum = solve(&problem, None).best_cost.unwrap();
        let loose = solve(&problem, Some(optimum + slack + 1));
        let tight = solve(&problem, Some(optimum + 1));
        prop_assert!(tight.stats.explored <= loose.stats.explored);
        prop_assert_eq!(tight.best_cost, Some(optimum));
        prop_assert_eq!(loose.best_cost, Some(optimum));
    }

    #[test]
    fn mid_run_shrink_and_complement_cover_all_leaves(warmup in 1u64..2000, boundary in 1u64..720) {
        // If the holder has already explored past the new boundary when
        // the steal lands, the overlap is explored twice — the paper's
        // "redundant nodes" (<0.4% in Table 2). Coverage must still be
        // complete and the redundancy exactly the overlap.
        let problem = FullEnumeration::new(6);
        let mut head = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
        head.run(warmup);
        let pos_at_shrink = head.position().to_u64().unwrap();
        head.shrink_end(&UBig::from(boundary));
        head.run_to_end();
        let mut tail = IntervalExplorer::new(
            &problem,
            &Interval::new(UBig::from(boundary), UBig::from(720u64)),
            None,
        );
        tail.run_to_end();
        // FullEnumeration never prunes, so leaves == numbers explored.
        let head_extent = pos_at_shrink.max(boundary).min(720);
        prop_assert_eq!(head.stats().leaves, head_extent.min(720));
        prop_assert_eq!(tail.stats().leaves, 720 - boundary);
        let redundant = head_extent.saturating_sub(boundary);
        prop_assert_eq!(head.stats().leaves + tail.stats().leaves, 720 + redundant);
    }

    #[test]
    fn reported_interval_shrinks_monotonically(seed in 0u64..100) {
        let problem = TableAssignment::random(5, seed);
        let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
        let mut last_len = explorer.current_interval().length();
        while !explorer.is_exhausted() {
            explorer.run(7);
            let len = explorer.current_interval().length();
            prop_assert!(len <= last_len);
            last_len = len;
        }
        prop_assert!(last_len.is_zero());
    }
}
