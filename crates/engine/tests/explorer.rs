//! Engine integration tests: the interval explorer against brute force,
//! interval-splitting equivalence, resumability and online shrinking.

use gridbnb_coding::{Interval, UBig};
use gridbnb_engine::toy::{FullEnumeration, TableAssignment};
use gridbnb_engine::{solve, solve_interval, IntervalExplorer, Problem, RunOutcome};

#[test]
fn finds_brute_force_optimum_diagonal() {
    for n in 2..=8 {
        let problem = TableAssignment::diagonal(n);
        let report = solve(&problem, None);
        assert_eq!(
            report.best_cost,
            Some(problem.optimum()),
            "diagonal({n}) optimum mismatch"
        );
    }
}

#[test]
fn finds_brute_force_optimum_random() {
    for seed in 0..10 {
        let problem = TableAssignment::random(7, seed);
        let report = solve(&problem, None);
        assert_eq!(
            report.best_cost,
            Some(problem.optimum()),
            "random(7, {seed}) optimum mismatch"
        );
    }
}

#[test]
fn initial_upper_bound_prunes_but_preserves_optimum() {
    let problem = TableAssignment::random(7, 42);
    let free = solve(&problem, None);
    let optimum = free.best_cost.unwrap();
    // A UB above the optimum must still find the optimum, faster.
    let bounded = solve(&problem, Some(optimum + 1));
    assert_eq!(bounded.best_cost, Some(optimum));
    assert!(
        bounded.stats.explored <= free.stats.explored,
        "an initial bound should not grow the search"
    );
    // A UB equal to the optimum proves optimality while finding nothing.
    let proof = solve(&problem, Some(optimum));
    assert_eq!(proof.best_cost, None);
    assert_eq!(proof.proven_optimum(Some(optimum)), Some(optimum));
}

#[test]
fn full_enumeration_visits_every_node() {
    let problem = FullEnumeration::new(6);
    let report = solve(&problem, None);
    assert_eq!(report.stats.explored, problem.total_nodes_below_root());
    assert_eq!(report.stats.leaves, 720);
    assert_eq!(report.stats.pruned, 0);
}

#[test]
fn interval_split_equivalence() {
    // Exploring [0,C) then [C,N!) independently must find the global
    // optimum among the two parts, for any split point.
    let problem = TableAssignment::random(6, 7);
    let full = solve(&problem, None);
    let total = problem.shape().root_range().end().to_u64().unwrap();
    for cut in [1u64, 17, 100, 359, 719] {
        let left = solve_interval(
            &problem,
            &Interval::new(UBig::zero(), UBig::from(cut)),
            None,
        );
        let right = solve_interval(
            &problem,
            &Interval::new(UBig::from(cut), UBig::from(total)),
            None,
        );
        let best = [left.best_cost, right.best_cost]
            .into_iter()
            .flatten()
            .min();
        assert_eq!(best, full.best_cost, "split at {cut} lost the optimum");
    }
}

#[test]
fn many_way_split_equivalence_with_shared_bound_handoff() {
    // Simulates sequentialized work units: each part starts from the best
    // cost discovered so far, like workers reading SOLUTION.
    let problem = TableAssignment::random(7, 99);
    let full = solve(&problem, None);
    let total = problem.shape().root_range().end().to_u64().unwrap();
    let parts = 13u64;
    let mut cutoff: Option<u64> = None;
    let mut explored = 0;
    for k in 0..parts {
        let a = total * k / parts;
        let b = total * (k + 1) / parts;
        let report = solve_interval(
            &problem,
            &Interval::new(UBig::from(a), UBig::from(b)),
            cutoff,
        );
        if let Some(c) = report.best_cost {
            cutoff = Some(cutoff.map_or(c, |x| x.min(c)));
        }
        explored += report.stats.explored;
    }
    assert_eq!(cutoff, full.best_cost);
    // Sharing bounds across parts cannot be worse than twice the
    // monolithic search on this toy (usually it is close to equal).
    assert!(explored < full.stats.explored * 2);
}

#[test]
fn explorer_is_resumable_in_small_budgets() {
    let problem = TableAssignment::random(6, 5);
    let full = solve(&problem, None);
    let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
    let mut rounds = 0;
    loop {
        match explorer.run(3) {
            RunOutcome::Exhausted => break,
            RunOutcome::BudgetSpent => rounds += 1,
        }
        assert!(rounds < 1_000_000, "runaway search");
    }
    assert_eq!(explorer.best().map(|s| s.cost), full.best_cost);
    assert_eq!(explorer.stats().explored, full.stats.explored);
    assert!(explorer.is_exhausted());
    assert!(explorer.current_interval().is_empty());
}

#[test]
fn position_is_monotone_and_tracks_interval() {
    let problem = TableAssignment::random(6, 11);
    let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
    let mut last = UBig::zero();
    while !explorer.is_exhausted() {
        explorer.run(10);
        let pos = explorer.position().clone();
        assert!(pos >= last, "position went backwards");
        last = pos;
    }
    assert_eq!(*explorer.position(), *explorer.end());
}

#[test]
fn shrink_end_stops_exploration_at_new_boundary() {
    let problem = FullEnumeration::new(6);
    let total = 720u64;
    let mut explorer = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::zero(), UBig::from(total)),
        None,
    );
    explorer.run(50);
    assert!(!explorer.is_exhausted());
    // Steal the tail: worker must never visit leaves numbered >= 100.
    explorer.shrink_end(&UBig::from(100u64));
    explorer.run_to_end();
    assert!(explorer.is_exhausted());
    // 100 leaves at most (those before the boundary).
    assert!(explorer.stats().leaves <= 100);
    // The other part explores the rest; together they cover everything.
    let mut tail = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::from(100u64), UBig::from(total)),
        None,
    );
    tail.run_to_end();
    assert_eq!(explorer.stats().leaves + tail.stats().leaves, total);
}

#[test]
fn shrink_end_to_current_position_exhausts_immediately() {
    let problem = FullEnumeration::new(5);
    let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
    explorer.run(10);
    let pos = explorer.position().clone();
    explorer.shrink_end(&pos);
    assert!(explorer.is_exhausted());
    assert!(explorer.current_interval().is_empty());
}

#[test]
fn shrink_end_never_grows() {
    let problem = FullEnumeration::new(5);
    let mut explorer = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::zero(), UBig::from(50u64)),
        None,
    );
    explorer.shrink_end(&UBig::from(100u64)); // attempt to grow: ignored
    assert_eq!(explorer.end().to_u64(), Some(50));
}

#[test]
fn observe_external_cutoff_prunes_like_own_discovery() {
    let problem = TableAssignment::random(7, 3);
    let optimum = solve(&problem, None).best_cost.unwrap();
    let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
    explorer.observe_external_cutoff(optimum); // as if read from SOLUTION
    explorer.run_to_end();
    // Nothing strictly better exists, so no solution is reported...
    assert!(explorer.best().is_none());
    // ...and the search was a pure optimality proof.
    assert!(explorer.stats().pruned > 0);
}

#[test]
fn take_fresh_best_reports_each_improvement_once() {
    let problem = TableAssignment::random(7, 13);
    let mut explorer = IntervalExplorer::new(&problem, &problem.shape().root_range(), None);
    let mut improvements = Vec::new();
    while !explorer.is_exhausted() {
        explorer.run(5);
        if let Some(s) = explorer.take_fresh_best() {
            improvements.push(s.cost);
        }
        assert!(explorer.take_fresh_best().is_none(), "double report");
    }
    assert!(!improvements.is_empty());
    assert!(improvements.windows(2).all(|w| w[1] < w[0]));
    assert_eq!(
        improvements.last().copied(),
        solve(&problem, None).best_cost
    );
}

#[test]
fn empty_interval_is_immediately_exhausted() {
    let problem = TableAssignment::diagonal(5);
    let explorer = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::from(7u64), UBig::from(7u64)),
        None,
    );
    assert!(explorer.is_exhausted());
    assert_eq!(explorer.stats().explored, 0);
}

#[test]
fn interval_clamped_to_root_range() {
    let problem = TableAssignment::diagonal(4);
    let mut explorer = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::zero(), UBig::from(10_000u64)),
        None,
    );
    explorer.run_to_end();
    assert_eq!(explorer.end().to_u64(), Some(24));
}

#[test]
fn mid_tree_interval_explores_only_its_leaves() {
    let problem = FullEnumeration::new(6);
    let mut explorer = IntervalExplorer::new(
        &problem,
        &Interval::new(UBig::from(100u64), UBig::from(220u64)),
        None,
    );
    explorer.run_to_end();
    assert_eq!(explorer.stats().leaves, 120);
}

#[test]
fn solution_ranks_reconstruct_cost() {
    let problem = TableAssignment::random(6, 21);
    let report = solve(&problem, None);
    let solution = report.best.unwrap();
    // Replay the ranks through the problem and compare the leaf cost.
    let mut state = problem.root_state();
    for &rank in &solution.leaf_ranks {
        state = problem.branch(&state, rank);
    }
    assert_eq!(problem.leaf_cost(&state), solution.cost);
}

#[test]
fn stats_are_consistent() {
    let problem = TableAssignment::random(7, 77);
    let report = solve(&problem, None);
    let s = report.stats;
    assert_eq!(s.explored, s.branched + s.pruned + s.leaves);
    assert!(s.improvements <= s.leaves);
    assert_eq!(s.bound_calls, s.branched + s.pruned);
}
