//! Pooled ≡ scalar equivalence on the toy problems: random instances,
//! random sub-intervals, budgeted slices, mid-run steals and external
//! incumbents. The flowshop and QAP crates run the same harness against
//! their overridden batch kernels; here the default scalar-looping
//! `lower_bound_batch` is under test, which pins the *explorer* half of
//! the equivalence.

use gridbnb_engine::equivalence::{
    assert_pooled_matches_scalar, assert_pooled_matches_scalar_simple, permille_interval,
    Interference,
};
use gridbnb_engine::toy::{FullEnumeration, TableAssignment};
use gridbnb_engine::{solve, Problem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pooled_matches_scalar_on_random_tables(
        n in 4usize..8,
        seed in 0u64..1000,
        a in 0u64..1001,
        b in 0u64..1001,
    ) {
        let problem = TableAssignment::random(n, seed);
        let total = problem.shape().root_range().end().clone();
        let interval = permille_interval(&total, a, b);
        assert_pooled_matches_scalar_simple(&problem, &interval, None);
    }

    #[test]
    fn pooled_matches_scalar_under_slices_and_shrinks(
        n in 4usize..8,
        seed in 0u64..1000,
        slice in 1u64..40,
        period in 1usize..6,
        keep in 1u64..=4,
    ) {
        let problem = TableAssignment::random(n, seed);
        let interval = problem.shape().root_range();
        assert_pooled_matches_scalar(
            &problem,
            &interval,
            None,
            slice,
            Interference {
                shrink_period: period,
                keep_num: keep,
                keep_den: 4,
                external_cutoff: u64::MAX,
            },
        );
    }

    #[test]
    fn pooled_matches_scalar_with_initial_and_external_cutoffs(
        n in 4usize..8,
        seed in 0u64..1000,
        slack in 0u64..30,
        slice in 1u64..60,
    ) {
        let problem = TableAssignment::random(n, seed);
        let optimum = solve(&problem, None).best_cost.unwrap();
        let interval = problem.shape().root_range();
        assert_pooled_matches_scalar(
            &problem,
            &interval,
            Some(optimum + slack),
            slice,
            Interference {
                external_cutoff: optimum + slack / 2,
                ..Interference::default()
            },
        );
    }

    #[test]
    fn pooled_matches_scalar_without_pruning(
        n in 3usize..7,
        a in 0u64..1001,
        b in 0u64..1001,
        slice in 1u64..50,
    ) {
        // FullEnumeration never prunes: every pool survives intact, the
        // pure branch-everything path.
        let problem = FullEnumeration::new(n);
        let total = problem.shape().root_range().end().clone();
        let interval = permille_interval(&total, a, b);
        assert_pooled_matches_scalar(
            &problem,
            &interval,
            None,
            slice,
            Interference::default(),
        );
    }
}

#[test]
fn pooled_batches_cover_consumed_bounds() {
    // Deterministic sanity on the batch counters themselves: a pooled
    // exhaustive run fills at least one batch, and never consumes more
    // bounds than it evaluated.
    let problem = TableAssignment::diagonal(7);
    let stats = assert_pooled_matches_scalar_simple(&problem, &problem.shape().root_range(), None);
    assert!(stats.bound_batches > 0);
    assert!(stats.nodes_bounded >= stats.bound_calls);
}
