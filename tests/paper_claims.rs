//! Tests pinned to the paper's quantitative and qualitative claims —
//! each test names the section it validates.

use gridbnb::bigint::UBig;
use gridbnb::coding::{fold, unfold, Interval, TreeShape};
use gridbnb::core::CoordinatorConfig;
use gridbnb::grid::{paper_pool, simulate, SimConfig, WorkloadModel};

/// §3 / §6: "A special coding of the work units … allows to optimize the
/// involved communications." At Ta056 scale an interval message is two
/// ≤27-byte integers; the equivalent active list is hundreds of nodes.
#[test]
fn claim_interval_messages_beat_node_lists() {
    let shape = TreeShape::permutation(50);
    // Unaligned endpoints, as a real mid-run DFS frontier produces (a
    // frontier boundary is a path of ~P ranks, not a round multiple of a
    // subtree weight).
    let begin = shape.total_leaves().mul_div_floor(171_717, 1_000_003);
    let end = shape.total_leaves().mul_div_floor(828_282, 1_000_003);
    let interval = Interval::new(begin, end);
    assert!(interval.byte_len() <= 54, "two ≤27-byte integers");
    let cover = unfold(&shape, &interval);
    // Each covering node costs at least its depth in ranks; the list is
    // orders of magnitude bigger than 54 bytes.
    let list_cost: usize = cover.iter().map(|n| n.ranks().len().max(1)).sum();
    assert!(
        list_cost > 20 * interval.byte_len(),
        "node list {} not >> interval {}",
        list_cost,
        interval.byte_len()
    );
    // And the coding is lossless.
    assert_eq!(fold(&shape, &cover).unwrap(), interval);
}

/// §4.3: "the resolution stops once INTERVALS becomes empty … no
/// additional communication is required" — termination falls out of the
/// load-balancing mechanism in both executors (asserted implicitly by
/// every completed run; here on the simulator).
#[test]
fn claim_implicit_termination() {
    let pool = paper_pool().scaled_down(60);
    let workload = WorkloadModel::uniform(UBig::factorial(50), 5e7);
    let mut config = SimConfig::new(pool);
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(1_000_000).0,
        holder_timeout_ns: 10 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    let report = simulate(&config, &workload);
    assert!(report.completed, "must terminate without extra machinery");
}

/// §5.3 / Table 2: "the worker processors were exploited with an average
/// to 97% while the farmer processor was exploited only 1.7%".
#[test]
fn claim_efficiency_shape() {
    let pool = paper_pool().scaled_down(20);
    let workload = WorkloadModel::irregular(UBig::factorial(50), 1e9, 512, 2.0, 3);
    let mut config = SimConfig::new(pool);
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(10_000_000).0,
        holder_timeout_ns: 15 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    let report = simulate(&config, &workload);
    assert!(report.completed);
    assert!(
        report.worker_exploitation > 0.90,
        "worker exploitation {:.3} should be near 1",
        report.worker_exploitation
    );
    assert!(
        report.farmer_exploitation < 0.10,
        "farmer exploitation {:.3} should be tiny",
        report.farmer_exploitation
    );
}

/// Table 2: "Redundant nodes 0.39%" — sub-percent redundancy at the
/// paper-like operating point.
#[test]
fn claim_sub_percent_redundancy() {
    // A run long enough that the end-game duplication burst (the only
    // redundancy source under stable operation) is amortized, like the
    // paper's 25-day campaign.
    let pool = paper_pool().scaled_down(20);
    let workload = WorkloadModel::irregular(UBig::factorial(50), 1e10, 512, 2.5, 17);
    let mut config = SimConfig::new(pool);
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(100_000_000).0,
        holder_timeout_ns: 15 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    let report = simulate(&config, &workload);
    assert!(report.completed);
    assert!(
        report.redundant_ratio < 0.01,
        "redundancy {:.4} should be sub-percent",
        report.redundant_ratio
    );
}

/// §3.5: "In a tree with a maximum depth P, the B&B performs less than P
/// decompositions" per boundary — the unfold cover stays tiny even at
/// 50! scale.
#[test]
fn claim_unfold_is_cheap() {
    let shape = TreeShape::permutation(50);
    let a = shape.total_leaves().div_rem_u64(997).0;
    let b = shape.total_leaves().mul_div_floor(996, 997);
    let cover = unfold(&shape, &Interval::new(a, b));
    // Two boundary chains of at most (arity-1) nodes per level.
    assert!(
        cover.len() <= 2 * 50 * 50,
        "cover of {} nodes is not O(P·arity)",
        cover.len()
    );
}

/// §1/§5.1: Ta056 is "50 jobs on 20 machines", never solved before, and
/// the search space needs big integers (50! >> u128).
#[test]
fn claim_ta056_scale() {
    let shape = TreeShape::permutation(50);
    assert!(shape.total_leaves().to_u128().is_none(), "50! exceeds u128");
    assert_eq!(shape.total_leaves().bit_len(), 215);
    let inst = gridbnb::flowshop::taillard::ta056();
    assert_eq!((inst.jobs(), inst.machines()), (50, 20));
}
