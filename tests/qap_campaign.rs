//! End-to-end QAP campaign: a Nugent-style n=12 instance is resolved to
//! proven optimality through every execution path — the sequential
//! engine and the sharded runtime (direct `ShardRouter` contacts) — and
//! the Gilmore–Lawler tier demonstrably out-prunes the screen bound.
//! This is the QAP counterpart of the flowshop Ta056 pipeline and the
//! proof that the interval-coded stack is problem-agnostic.

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::engine::solve;
use gridbnb::qap::greedy::{greedy_upper_bound, GreedyParams};
use gridbnb::qap::{Bound, QapInstance, QapProblem};

/// The campaign's flagship instance: 12 facilities on a 3×4 grid.
fn nugent12() -> QapInstance {
    QapInstance::nugent_style(3, 4, 2007)
}

#[test]
fn nugent12_resolved_to_proven_optimality_sequential_and_sharded() {
    let instance = nugent12();

    // Heuristic upper bound (the campaign's IG analogue).
    let (placement, ub) = greedy_upper_bound(&instance, &GreedyParams::default());
    let mut sorted = placement.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..12).collect::<Vec<_>>(), "UB placement valid");
    assert_eq!(ub, instance.cost(&placement));

    // Path 1: sequential engine over the whole root interval.
    let problem = QapProblem::new(instance.clone(), Bound::GilmoreLawler);
    let sequential = solve(&problem, Some(ub + 1));
    let optimum = sequential
        .best_cost
        .expect("ub+1 admits at least one improving leaf");
    assert!(optimum <= ub, "proof cannot exceed the heuristic bound");
    assert!(sequential.stats.pruned > 0, "n=12 needs pruning to finish");

    // The proof identifies a real placement of that cost.
    let best = sequential.best.expect("solution recorded");
    let proof_placement = problem.decode_ranks(&best.leaf_ranks);
    assert_eq!(instance.cost(&proof_placement), optimum);

    // Path 2: the sharded runtime — workers contact their home shard of
    // a ShardRouter directly, cross-shard stealing reaches every slice.
    let mut config = RuntimeConfig::new(4)
        .with_shards(4)
        .with_initial_upper_bound(ub + 1);
    config.poll_nodes = 500;
    let sharded = run(&problem, &config);
    assert_eq!(
        sharded.proven_optimum,
        Some(optimum),
        "sharded resolution must prove the same optimum"
    );
    assert!(sharded.total_explored() > 0);
}

#[test]
fn gilmore_lawler_tier_expands_measurably_fewer_nodes_than_screen() {
    let instance = QapInstance::nugent_style(3, 3, 7);
    let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());

    let screen = solve(
        &QapProblem::new(instance.clone(), Bound::Screen),
        Some(ub + 1),
    );
    let gl = solve(
        &QapProblem::new(instance.clone(), Bound::GilmoreLawler),
        Some(ub + 1),
    );
    let tiered = solve(&QapProblem::new(instance, Bound::Tiered), Some(ub + 1));

    // All tiers prove the same optimum…
    assert_eq!(screen.best_cost, gl.best_cost);
    assert_eq!(screen.best_cost, tiered.best_cost);
    // …but the Gilmore–Lawler tier expands *measurably* fewer nodes
    // (on this instance the gap is well over 2×).
    assert!(
        screen.stats.explored >= 2 * gl.stats.explored,
        "GL should at least halve the screen's {} nodes (got {})",
        screen.stats.explored,
        gl.stats.explored
    );
    // The tiered operator prunes exactly like its strongest tier.
    assert_eq!(tiered.stats.explored, gl.stats.explored);
}

#[test]
fn sharded_resolution_is_exact_even_when_one_worker_must_steal_everything() {
    // One worker, four shards: three slices are only reachable through
    // work stealing — the run must still terminate with the optimum.
    let instance = QapInstance::nugent_style(2, 4, 5);
    let problem = QapProblem::new(instance.clone(), Bound::Tiered);
    assert_eq!(problem.bound_mode(), Bound::Tiered);
    let expected = solve(&problem, None).best_cost;
    let mut config = RuntimeConfig::new(1).with_shards(4);
    config.poll_nodes = 200;
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(
        report.steals >= 3,
        "unserved shards are drained by stealing"
    );
}
