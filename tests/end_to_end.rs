//! Cross-crate end-to-end tests: the full pipeline from instance
//! generation through heuristics to parallel exact resolution, checked
//! for agreement across every execution mode the workspace offers.

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::core::UBig;
use gridbnb::engine::{solve, solve_interval, Problem};
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::ig::{iterated_greedy, IgParams};
use gridbnb::flowshop::makespan::makespan;
use gridbnb::flowshop::neh::neh;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use gridbnb::tsp::{TspInstance, TspProblem};

#[test]
fn flowshop_pipeline_agrees_across_modes() {
    let instance = taillard::generate(9, 5, 20_060_707);

    // Heuristics give upper bounds.
    let (neh_schedule, neh_cost) = neh(&instance);
    assert_eq!(makespan(&instance, &neh_schedule), neh_cost);
    let (ig_schedule, ig_cost) = iterated_greedy(
        &instance,
        &IgParams {
            iterations: 80,
            ..IgParams::default()
        },
    );
    assert_eq!(makespan(&instance, &ig_schedule), ig_cost);
    assert!(ig_cost <= neh_cost);

    // Sequential exact resolution under all bounds.
    let mut optima = Vec::new();
    for mode in [
        BoundMode::OneMachine,
        BoundMode::Johnson(PairSelection::All),
        BoundMode::Combined(PairSelection::AdjacentPlusEnds),
    ] {
        let problem = FlowshopProblem::new(instance.clone(), mode);
        optima.push(solve(&problem, None).best_cost.unwrap());
    }
    assert!(optima.windows(2).all(|w| w[0] == w[1]), "bounds disagree");
    let optimum = optima[0];
    assert!(ig_cost >= optimum);

    // Parallel resolution, seeded with the IG bound like the paper.
    let problem = FlowshopProblem::new(instance.clone(), BoundMode::Johnson(PairSelection::All));
    let report = run(
        &problem,
        &RuntimeConfig::new(4).with_initial_upper_bound(ig_cost + 1),
    );
    assert_eq!(report.proven_optimum, Some(optimum));

    // The optimal schedule decodes and re-evaluates exactly.
    if let Some(sol) = &report.solution {
        let schedule = problem.decode_ranks(&sol.leaf_ranks);
        assert_eq!(makespan(&instance, &schedule), optimum);
    }
}

#[test]
fn interval_partition_union_equals_whole_space() {
    // Cutting the tree into k interval work units and solving them
    // independently (as grid workers would) recovers the global optimum
    // — the foundational property of the coding.
    let instance = taillard::generate(8, 4, 555);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));
    let full = solve(&problem, None);
    let root = problem.shape().root_range();
    for parts in [2u64, 5, 16] {
        let mut best: Option<u64> = None;
        let mut last_end = root.begin().clone();
        for k in 1..=parts {
            let end = if k == parts {
                root.end().clone()
            } else {
                root.end().mul_div_floor(k, parts)
            };
            let piece = gridbnb::coding::Interval::new(last_end.clone(), end.clone());
            last_end = end;
            let sub = solve_interval(&problem, &piece, None);
            best = [best, sub.best_cost].into_iter().flatten().min();
        }
        assert_eq!(best, full.best_cost, "{parts}-way split lost the optimum");
    }
}

#[test]
fn tsp_and_flowshop_share_the_same_machinery() {
    // The identical runtime solves both problem types in one process.
    let fs = FlowshopProblem::new(
        taillard::generate(8, 4, 99),
        BoundMode::Johnson(PairSelection::All),
    );
    let tsp = TspProblem::new(TspInstance::random_euclidean(8, 99));
    let fs_expected = solve(&fs, None).best_cost;
    let tsp_expected = solve(&tsp, None).best_cost;
    let fs_report = run(&fs, &RuntimeConfig::new(3));
    let tsp_report = run(&tsp, &RuntimeConfig::new(3));
    assert_eq!(fs_report.proven_optimum, fs_expected);
    assert_eq!(tsp_report.proven_optimum, tsp_expected);
}

#[test]
fn ta056_artifacts_are_coherent() {
    // The Ta056 objects all exist and interoperate at full 50! scale,
    // regardless of the seed-provenance caveat (see flowshop tests).
    let instance = taillard::ta056();
    let problem = FlowshopProblem::new(instance.clone(), BoundMode::OneMachine);
    let shape = problem.shape();
    assert_eq!(*shape.total_leaves(), UBig::factorial(50));

    // The published schedule encodes to a leaf, decodes back, and its
    // number is inside the root range.
    let ranks = problem.encode_schedule(&taillard::TA056_OPTIMAL_SCHEDULE);
    assert_eq!(
        problem.decode_ranks(&ranks),
        taillard::TA056_OPTIMAL_SCHEDULE.to_vec()
    );
    let leaf = gridbnb::coding::NodePath::from_ranks(ranks);
    assert!(shape.root_range().contains(&leaf.number(&shape)));

    // The root bound is admissible w.r.t. the published makespan value.
    let root_bound = problem.lower_bound(&problem.root_state());
    let published = makespan(&instance, &taillard::TA056_OPTIMAL_SCHEDULE);
    assert!(root_bound <= published);
}

#[test]
fn explorer_partial_run_on_ta056_scale_tree() {
    // Actually explore a tiny interval of the real Ta056 tree: 50!-sized
    // positions, real bounds, real branching.
    let problem = FlowshopProblem::new(
        taillard::ta056(),
        BoundMode::Johnson(PairSelection::AdjacentPlusEnds),
    );
    let shape = problem.shape();
    let begin = shape.total_leaves().div_rem_u64(7).0;
    let end = &begin + &UBig::from(5_000u64);
    let interval = gridbnb::coding::Interval::new(begin, end);
    let report = solve_interval(&problem, &interval, Some(4_500));
    // 5000 leaf-numbers: some cost must come back (bound 4500 is loose
    // for most schedules), and the explorer must have terminated.
    assert!(report.stats.explored > 0);
}
